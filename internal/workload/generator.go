package workload

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"cloudlens/internal/core"
	"cloudlens/internal/parallel"
	"cloudlens/internal/platform"
	"cloudlens/internal/sim"
	"cloudlens/internal/trace"
	"cloudlens/internal/usage"
)

// vmSpec is a VM the workload models want to exist; placement through the
// allocator turns surviving specs into trace records.
type vmSpec struct {
	sub     core.SubscriptionID
	service string
	cloud   core.Cloud
	region  string
	size    core.VMSize
	created int
	deleted int
	usage   usage.Params
}

// serviceDeployment is a deployment group: a private first-party service
// with a shared utilization template, or a public subscription's VM pool.
type serviceDeployment struct {
	sub       core.SubscriptionID
	name      string
	cloud     core.Cloud
	regions   []string
	perRegion []int
	// template is the shared utilization model (private services); public
	// deployments draw per-VM models instead.
	template usage.Params
	// size is the per-VM size of a private service (one SKU per service).
	size core.VMSize
}

// generator accumulates specs across the model stages.
type generator struct {
	cfg   Config
	topo  *platform.Topology
	specs []vmSpec

	privateServices []serviceDeployment
	publicSubs      []serviceDeployment

	allocationFailures int
}

// Generate produces a complete validated trace from the configuration.
//
// The model stages run concurrently where their data dependencies allow:
// sim.RNG.Fork derives a child stream without mutating the parent, so every
// stage's randomness is fixed up front regardless of execution order, and
// each stage appends to its own spec slice. The slices concatenate in the
// seed pipeline's append order before placement, so the generated trace is
// byte-identical to a sequential run. Stage graph: private ∥ public first
// (they build the deployment lists), then special (appends to the private
// service list), then churn ∥ bursts (both read the finished lists).
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	if topo == nil {
		topo = DefaultTopology(cfg.Scale)
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	g := &generator{cfg: cfg, topo: topo}

	root := sim.NewRNG(cfg.Seed)
	var privSpecs, pubSpecs, specialSpecs, churnSpecs, burstSpecs []vmSpec
	parallel.Do(
		func() { privSpecs = g.genPrivate(root.Fork("private")) },
		func() { pubSpecs = g.genPublic(root.Fork("public")) },
	)
	specialSpecs = g.genSpecial(root.Fork("special"))
	parallel.Do(
		func() { churnSpecs = g.genChurn(root.Fork("churn")) },
		func() { burstSpecs = g.genBursts(root.Fork("bursts")) },
	)
	g.specs = make([]vmSpec, 0,
		len(privSpecs)+len(pubSpecs)+len(specialSpecs)+len(churnSpecs)+len(burstSpecs))
	for _, stage := range [][]vmSpec{privSpecs, pubSpecs, specialSpecs, churnSpecs, burstSpecs} {
		g.specs = append(g.specs, stage...)
	}

	t := g.place()
	t.Meta = trace.Meta{
		Seed:      cfg.Seed,
		Scale:     cfg.Scale,
		Generator: "cloudlens default generator",
	}
	t.Meta.AllocationFailures = g.allocationFailures
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return t, nil
}

// scaleCount multiplies a count by the configured scale, keeping at least 1.
func (g *generator) scaleCount(n int) int {
	s := int(math.Round(float64(n) * g.cfg.Scale))
	if s < 1 {
		s = 1
	}
	return s
}

// pickRegions samples k distinct deployment regions, weighted by the
// platform's cluster presence so capacity-rich regions attract more
// deployments. Regions named in exclude are skipped (the Canada pilot
// regions carry dedicated load only, keeping the Section IV-B experiment
// controlled).
func (g *generator) pickRegions(rng *sim.RNG, cloud core.Cloud, k int, exclude []string) []string {
	available := g.topo.RegionsOf(cloud)
	if len(exclude) > 0 {
		filtered := available[:0:0]
		for _, r := range available {
			skip := false
			for _, e := range exclude {
				if r == e {
					skip = true
					break
				}
			}
			if !skip {
				filtered = append(filtered, r)
			}
		}
		available = filtered
	}
	if k > len(available) {
		k = len(available)
	}
	weights := make([]float64, len(available))
	for i, r := range available {
		weights[i] = float64(len(g.topo.ClustersIn(r, cloud)))
	}
	picked := make([]string, 0, k)
	for len(picked) < k {
		i := rng.Categorical(weights)
		weights[i] = 0
		picked = append(picked, available[i])
	}
	return picked
}

// regionCount draws a subscription's number of deployment regions.
func regionCount(rng *sim.RNG, singleProb float64, maxExtra int, zipfS float64) int {
	if rng.Bool(singleProb) || maxExtra <= 0 {
		return 1
	}
	return 1 + rng.Zipf(maxExtra, zipfS)
}

// baseLifetime returns the created/deleted steps of a long-running VM that
// predates and outlives the observation window.
func baseLifetime(rng *sim.RNG, n int) (created, deleted int) {
	return -(1 + rng.Intn(n)), n + 1 + rng.Intn(n)
}

// genPrivate builds the regular first-party subscriptions: few, large,
// multi-region, homogeneous service deployments.
func (g *generator) genPrivate(rng *sim.RNG) []vmSpec {
	var specs []vmSpec
	cfg := g.cfg.Private
	n := g.scaleCount(cfg.Subscriptions)
	for i := 0; i < n; i++ {
		sub := core.SubscriptionID(fmt.Sprintf("prv-sub-%04d", i+1))
		k := regionCount(rng, cfg.SingleRegionProb, cfg.MaxExtraRegions, cfg.RegionZipfS)
		exclude := []string{g.cfg.Special.CanadaSource, g.cfg.Special.CanadaDest}
		regions := g.pickRegions(rng, core.Private, k, exclude)
		total := deploymentSize(rng, cfg.SizeMu, cfg.SizeSigma, cfg.RegionSizeExp, len(regions), g.scaleCount(500))
		// Large first-party deployments are the user-facing web and
		// communication services the paper says dominate the private
		// cloud, so they skew diurnal; the configured weights apply to
		// the ordinary services. Without this, one huge service that
		// happened to draw hourly-peak would dominate the VM-level
		// pattern mix of Figure 5(d).
		weights := cfg.PatternWeights
		if total >= g.scaleCount(120) {
			weights = [4]float64{0.72, 0.08, 0.04, 0.16}
		}
		kind := samplePattern(rng, weights)
		utc := len(regions) > 1 && rng.Bool(cfg.RegionAgnosticProb)
		perRegion := splitAcrossRegions(rng, total, len(regions))
		// Clip per-region shares so one deployment cannot monopolize a
		// small region's scaled-down capacity.
		maxPerRegion := g.scaleCount(170)
		for ri := range perRegion {
			if perRegion[ri] > maxPerRegion {
				perRegion[ri] = maxPerRegion
			}
		}
		svc := serviceDeployment{
			sub:       sub,
			name:      fmt.Sprintf("svc-%04d", i+1),
			cloud:     core.Private,
			regions:   regions,
			perRegion: perRegion,
			template:  privateTemplate(rng, kind, utc),
			size:      samplePrivateSize(rng),
		}
		g.privateServices = append(g.privateServices, svc)
		g.emitBaseVMs(rng, &specs, svc, cfg.BaseVMFraction)
	}
	return specs
}

// genPublic builds the third-party subscriptions: many, small, mostly
// single-region, with independent per-VM utilization and diverse sizes.
func (g *generator) genPublic(rng *sim.RNG) []vmSpec {
	var specs []vmSpec
	cfg := g.cfg.Public
	n := g.scaleCount(cfg.Subscriptions)
	for i := 0; i < n; i++ {
		sub := core.SubscriptionID(fmt.Sprintf("pub-sub-%05d", i+1))
		k := regionCount(rng, cfg.SingleRegionProb, cfg.MaxExtraRegions, cfg.RegionZipfS)
		regions := g.pickRegions(rng, core.Public, k, nil)
		total := deploymentSize(rng, cfg.SizeMu, cfg.SizeSigma, cfg.RegionSizeExp, len(regions), g.scaleCount(120))
		dep := serviceDeployment{
			sub:       sub,
			name:      fmt.Sprintf("dep-%05d", i+1),
			cloud:     core.Public,
			regions:   regions,
			perRegion: splitAcrossRegions(rng, total, len(regions)),
		}
		g.publicSubs = append(g.publicSubs, dep)
		g.emitBaseVMs(rng, &specs, dep, cfg.BaseVMFraction)
		g.emitDailyScalers(rng, &specs, dep, cfg.DailyScalerFraction)
	}
	return specs
}

// emitDailyScalers creates the auto-scaled portion of a public deployment:
// each scaler slot spawns a VM every weekday around local business-hours
// start and retires it around the evening. The aggregate effect is the
// weekday diurnal swing and weekend decrease of public VM counts the paper
// shows in Figure 3(b).
func (g *generator) emitDailyScalers(rng *sim.RNG, sink *[]vmSpec, dep serviceDeployment, fraction float64) {
	if fraction <= 0 {
		return
	}
	stepMin := g.cfg.Grid.StepMinutes()
	stepsPerDay := 24 * 60 / stepMin
	days := g.cfg.Grid.N / stepsPerDay
	for ri, region := range dep.regions {
		slots := int(math.Round(float64(dep.perRegion[ri]) * fraction))
		tz := g.topo.TZOffsetMin(region)
		for s := 0; s < slots; s++ {
			for day := 0; day < days; day++ {
				dayStart := day * stepsPerDay
				if g.cfg.Grid.IsWeekend(dayStart+stepsPerDay/2, tz) {
					continue
				}
				// ~08:00 local start, ~11 +/- 2.5 hour run.
				startLocalMin := 8*60 + rng.Intn(180)
				created := dayStart + (startLocalMin-tz)/stepMin
				lifeSteps := (9*60 + rng.Intn(5*60)) / stepMin
				if created < 0 {
					created = 0
				}
				if created >= g.cfg.Grid.N {
					continue
				}
				*sink = append(*sink,
					g.newSpec(rng, dep, region, created, created+lifeSteps))
			}
		}
	}
}

// emitBaseVMs creates the long-running portion of a deployment.
func (g *generator) emitBaseVMs(rng *sim.RNG, sink *[]vmSpec, dep serviceDeployment, baseFraction float64) {
	for ri, region := range dep.regions {
		count := int(math.Round(float64(dep.perRegion[ri]) * baseFraction))
		if dep.perRegion[ri] > 0 && count == 0 {
			count = 1
		}
		for j := 0; j < count; j++ {
			created, deleted := baseLifetime(rng, g.cfg.Grid.N)
			*sink = append(*sink, g.newSpec(rng, dep, region, created, deleted))
		}
	}
}

// newSpec instantiates one VM of a deployment in a region.
func (g *generator) newSpec(rng *sim.RNG, dep serviceDeployment, region string, created, deleted int) vmSpec {
	var params usage.Params
	var size core.VMSize
	if dep.cloud == core.Private {
		if g.cfg.Private.IndependentVMPatterns {
			// Ablation: private VMs behave like independent tenants.
			kind := samplePattern(rng, g.cfg.Private.PatternWeights)
			params = privateTemplate(rng, kind, dep.template.UTCAnchored)
		} else {
			params = reseed(dep.template, rng)
		}
		size = dep.size
	} else {
		kind := samplePattern(rng, g.cfg.Public.PatternWeights)
		params = publicTemplate(rng, kind)
		size = samplePublicSize(rng)
	}
	params.TZOffsetMin = g.topo.TZOffsetMin(region)
	return vmSpec{
		sub:     dep.sub,
		service: dep.name,
		cloud:   dep.cloud,
		region:  region,
		size:    size,
		created: created,
		deleted: deleted,
		usage:   params,
	}
}

// churnIndex lists, for one region, the deployments present there with
// sampling weights proportional to their deployment sizes: bigger services
// auto-scale and redeploy more.
type churnIndex struct {
	deps    []int // indices into the deployment slice
	weights []float64
}

func buildChurnIndex(deps []serviceDeployment) map[string]*churnIndex {
	idx := make(map[string]*churnIndex)
	for di, dep := range deps {
		for ri, region := range dep.regions {
			ci := idx[region]
			if ci == nil {
				ci = &churnIndex{}
				idx[region] = ci
			}
			ci.deps = append(ci.deps, di)
			ci.weights = append(ci.weights, float64(dep.perRegion[ri])+1)
		}
	}
	return idx
}

// churnBell is the normalized diurnal shape of creation rates: a squared
// raised cosine peaking at 14:00 with mean 1.
func churnBell(minuteOfDay int) float64 {
	phase := 2 * math.Pi * float64(minuteOfDay-14*60) / (24 * 60)
	bell := 0.5 * (1 + math.Cos(phase))
	return bell * bell / 0.375
}

// churnRate returns the expected creations in one grid step.
func (g *generator) churnRate(step int, tzOffsetMin int, perHour, amp, weekendFactor float64) float64 {
	stepsPerHour := g.cfg.Grid.StepsPerHour()
	base := perHour * g.cfg.Scale / float64(stepsPerHour)
	m := g.cfg.Grid.MinuteOfDay(step, tzOffsetMin)
	factor := (1 - amp) + amp*churnBell(m)
	if g.cfg.Grid.IsWeekend(step, tzOffsetMin) {
		factor *= weekendFactor
	}
	return base * factor
}

// genChurn runs both clouds' arrival processes: a clean diurnal
// auto-scaling process for public workloads and a low-amplitude baseline
// for private ones (bursts come separately). Private specs precede public
// ones, as in the sequential pipeline.
func (g *generator) genChurn(rng *sim.RNG) []vmSpec {
	priv := g.runChurn(rng.Fork("private"), core.Private, g.privateServices,
		g.cfg.Private.ChurnPerRegionHour, g.cfg.Private.ChurnDiurnalAmp, g.cfg.Private.ChurnWeekendFactor,
		newLifetimeMixture(g.cfg.Private.ShortLifetimeFrac, g.cfg.Private.ShortLifetimeMeanMin,
			g.cfg.Private.LongLifetimeMedianMin, g.cfg.Private.LongLifetimeSigma))
	pub := g.runChurn(rng.Fork("public"), core.Public, g.publicSubs,
		g.cfg.Public.ChurnPerRegionHour, g.cfg.Public.ChurnDiurnalAmp, g.cfg.Public.ChurnWeekendFactor,
		newLifetimeMixture(g.cfg.Public.ShortLifetimeFrac, g.cfg.Public.ShortLifetimeMeanMin,
			g.cfg.Public.LongLifetimeMedianMin, g.cfg.Public.LongLifetimeSigma))
	return append(priv, pub...)
}

// runChurn simulates one cloud's arrival process. Every region draws from
// its own forked RNG stream, so the regions fan out over the worker pool
// and their spec slices concatenate in region order — the exact sequence
// the sequential sweep produced.
func (g *generator) runChurn(rng *sim.RNG, cloud core.Cloud, deps []serviceDeployment,
	perHour, amp, weekendFactor float64, lifetimes lifetimeMixture) []vmSpec {

	idx := buildChurnIndex(deps)
	regions := g.topo.RegionsOf(cloud)
	stepMin := g.cfg.Grid.StepMinutes()
	perRegion := parallel.Map(len(regions), func(i int) []vmSpec {
		region := regions[i]
		ci := idx[region]
		if ci == nil {
			return nil
		}
		regionRNG := rng.Fork(region)
		tz := g.topo.TZOffsetMin(region)
		var specs []vmSpec
		for step := 0; step < g.cfg.Grid.N; step++ {
			rate := g.churnRate(step, tz, perHour, amp, weekendFactor)
			for e := regionRNG.Poisson(rate); e > 0; e-- {
				dep := deps[ci.deps[regionRNG.Categorical(ci.weights)]]
				life := lifetimes.sampleSteps(regionRNG, stepMin)
				specs = append(specs,
					g.newSpec(regionRNG, dep, region, step, step+life))
			}
		}
		return specs
	})
	var out []vmSpec
	for _, specs := range perRegion {
		out = append(out, specs...)
	}
	return out
}

// genBursts injects the private cloud's service-rollout bursts: a large
// service creates tens to hundreds of VMs within minutes, producing the
// spikes of Figures 3(b) and 3(c).
func (g *generator) genBursts(rng *sim.RNG) []vmSpec {
	var specs []vmSpec
	cfg := g.cfg.Private
	if len(g.privateServices) == 0 {
		return nil
	}
	bursts := g.scaleCount(cfg.Bursts)
	for b := 0; b < bursts; b++ {
		svc := g.privateServices[rng.Intn(len(g.privateServices))]
		region := svc.regions[rng.Intn(len(svc.regions))]
		// Rollouts happen mostly on weekdays.
		step := rng.Intn(g.cfg.Grid.N)
		if g.cfg.Grid.IsWeekend(step, 0) && rng.Bool(0.8) {
			step = rng.Intn(5 * g.cfg.Grid.N / 7) // first five days
		}
		size := cfg.BurstSizeMin + rng.Intn(cfg.BurstSizeMax-cfg.BurstSizeMin+1)
		size = g.scaleCount(size)
		for j := 0; j < size; j++ {
			created := step + rng.Intn(3)
			if created >= g.cfg.Grid.N {
				created = g.cfg.Grid.N - 1
			}
			// Rollout VMs persist for hours to days.
			lifeMin := rng.LogNormal(math.Log(36*60), 0.8)
			life := int(math.Ceil(lifeMin / float64(g.cfg.Grid.StepMinutes())))
			if life < 1 {
				life = 1
			}
			specs = append(specs, g.newSpec(rng, svc, region, created, created+life))
		}
	}
	return specs
}

// deletion is a pending Free event during placement replay.
type deletion struct {
	step      int
	placement platform.Placement
	request   platform.Request
}

// deletionHeap is a min-heap on step.
type deletionHeap []deletion

func (h deletionHeap) Len() int            { return len(h) }
func (h deletionHeap) Less(i, j int) bool  { return h[i].step < h[j].step }
func (h deletionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deletionHeap) Push(x interface{}) { *h = append(*h, x.(deletion)) }
func (h *deletionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// place replays all specs through the allocator in creation order, freeing
// capacity as VMs terminate, and materializes the trace.
func (g *generator) place() *trace.Trace {
	sort.SliceStable(g.specs, func(i, j int) bool {
		return g.specs[i].created < g.specs[j].created
	})
	alloc := platform.NewAllocatorWithOptions(g.topo, g.cfg.Placement)
	var pending deletionHeap
	heap.Init(&pending)

	t := &trace.Trace{
		Grid:     g.cfg.Grid,
		Topology: *g.topo,
	}
	var nextID core.VMID = 1
	for i := range g.specs {
		s := &g.specs[i]
		for pending.Len() > 0 && pending[0].step <= s.created {
			d := heap.Pop(&pending).(deletion)
			alloc.Free(d.placement, d.request)
		}
		req := platform.Request{
			Region:       s.region,
			Cloud:        s.cloud,
			Subscription: s.sub,
			Service:      s.service,
			Size:         s.size,
		}
		p, err := alloc.Allocate(req)
		if err != nil {
			// Allocation failure: the VM request is rejected, as in
			// the real platform; the count lands in Meta.
			continue
		}
		t.VMs = append(t.VMs, trace.VM{
			ID:           nextID,
			Subscription: s.sub,
			Service:      s.service,
			Cloud:        s.cloud,
			Region:       s.region,
			Node:         p.Node,
			Rack:         p.Rack,
			Size:         s.size,
			CreatedStep:  s.created,
			DeletedStep:  s.deleted,
			Usage:        s.usage,
		})
		nextID++
		if s.deleted <= g.cfg.Grid.N {
			heap.Push(&pending, deletion{step: s.deleted, placement: p, request: req})
		}
	}
	g.allocationFailures = alloc.Failures()
	return t
}
