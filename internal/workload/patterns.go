package workload

import (
	"cloudlens/internal/core"
	"cloudlens/internal/sim"
	"cloudlens/internal/usage"
)

// patternIndex maps the PatternWeights array positions to pattern kinds.
var patternOrder = [4]core.Pattern{
	core.PatternDiurnal,
	core.PatternStable,
	core.PatternIrregular,
	core.PatternHourlyPeak,
}

// samplePattern draws a pattern kind according to the configured weights.
func samplePattern(rng *sim.RNG, weights [4]float64) core.Pattern {
	return patternOrder[rng.Categorical(weights[:])]
}

// uniformIn returns a uniform draw in [lo, hi).
func uniformIn(rng *sim.RNG, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}

// privateTemplate builds the shared utilization template of a first-party
// service. All VMs of the service inherit it (with fresh noise seeds),
// which is what makes private nodes homogeneous (Figure 7a). utcAnchored
// services are behind geo load balancers (region-agnostic, Figure 7c).
func privateTemplate(rng *sim.RNG, kind core.Pattern, utcAnchored bool) usage.Params {
	var p usage.Params
	switch kind {
	case core.PatternDiurnal:
		p = usage.Diurnal(
			uniformIn(rng, 0.04, 0.12),
			uniformIn(rng, 0.10, 0.36),
			0, rng.Uint64())
		p.WeekendFactor = uniformIn(rng, 0.25, 0.45)
		p.Sharpness = uniformIn(rng, 2, 4)
	case core.PatternStable:
		p = usage.Stable(uniformIn(rng, 0.08, 0.35), rng.Uint64())
	case core.PatternIrregular:
		p = usage.Irregular(uniformIn(rng, 0.03, 0.08), rng.Uint64())
		p.SpikeProb = uniformIn(rng, 0.03, 0.08)
	case core.PatternHourlyPeak:
		p = usage.HourlyPeak(
			uniformIn(rng, 0.04, 0.10),
			uniformIn(rng, 0.15, 0.35),
			0, rng.Uint64())
		p.PeakAmp = uniformIn(rng, 0.25, 0.45)
		p.HalfHourPeaks = rng.Bool(0.7)
	}
	p.UTCAnchored = utcAnchored
	setPeakMinute(rng, &p, utcAnchored)
	return p
}

// publicTemplate builds an independent per-VM utilization model for a
// third-party VM. Public VMs phase by local region time and have milder
// weekend effects, which flattens the aggregate daily curve (Figure 6d).
func publicTemplate(rng *sim.RNG, kind core.Pattern) usage.Params {
	var p usage.Params
	switch kind {
	case core.PatternDiurnal:
		p = usage.Diurnal(
			uniformIn(rng, 0.03, 0.12),
			uniformIn(rng, 0.10, 0.40),
			0, rng.Uint64())
		p.WeekendFactor = uniformIn(rng, 0.5, 0.9)
		p.Sharpness = uniformIn(rng, 1.5, 3)
	case core.PatternStable:
		p = usage.Stable(uniformIn(rng, 0.02, 0.30), rng.Uint64())
	case core.PatternIrregular:
		p = usage.Irregular(uniformIn(rng, 0.02, 0.08), rng.Uint64())
		p.SpikeProb = uniformIn(rng, 0.02, 0.08)
	case core.PatternHourlyPeak:
		p = usage.HourlyPeak(
			uniformIn(rng, 0.03, 0.08),
			uniformIn(rng, 0.12, 0.30),
			0, rng.Uint64())
		p.HalfHourPeaks = rng.Bool(0.5)
	}
	setPeakMinute(rng, &p, false)
	return p
}

// setPeakMinute picks the daily peak: early-afternoon local time for
// local-anchored workloads, or the equivalent UTC slot (US business hours)
// for geo-balanced ones.
func setPeakMinute(rng *sim.RNG, p *usage.Params, utcAnchored bool) {
	if p.Pattern == core.PatternStable || p.Pattern == core.PatternIrregular {
		return
	}
	if utcAnchored {
		// ~16:00-20:00 UTC covers US business hours.
		p.PeakMinute = int(uniformIn(rng, 16*60, 20*60))
		return
	}
	// ~11:30-15:30 local.
	p.PeakMinute = int(uniformIn(rng, 11*60+30, 15*60+30))
}

// reseed clones a service template for one VM: a fresh noise seed plus
// small per-VM perturbations of level, amplitude, and phase. Sibling VMs of
// a service remain strongly correlated (the load balancer splits the same
// demand), but not identical — real replicas serve slightly different
// shards, which is why the paper's Figure 7(a) median is 0.55 rather
// than ~1.
func reseed(template usage.Params, rng *sim.RNG) usage.Params {
	template.Seed = rng.Uint64()
	template.Base = clampFrac(template.Base + uniformIn(rng, -0.02, 0.02))
	template.Amp *= uniformIn(rng, 0.65, 1.35)
	if template.Pattern == core.PatternDiurnal || template.Pattern == core.PatternHourlyPeak {
		// Periodic replicas get extra jitter and a phase wobble; stable
		// VMs keep their small noise so they remain classifiably flat.
		template.NoiseAmp = uniformIn(rng, 0.02, 0.04)
		template.PeakMinute += rng.Intn(51) - 25
	}
	return template
}

func clampFrac(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
