package workload

import (
	"math"

	"cloudlens/internal/sim"
)

// lifetimeMixture models VM lifetimes as a two-component mixture: a
// short-lived exponential component (auto-scaled and batch VMs) and a
// log-normal long tail. The component weights are calibrated so that the
// shortest lifetime bin of Figure 3(a) captures ~49% of private and ~81% of
// public within-week VMs.
type lifetimeMixture struct {
	shortFrac    float64
	shortMeanMin float64
	longMuLog    float64 // log of the long component's median, minutes
	longSigma    float64
}

func newLifetimeMixture(shortFrac, shortMeanMin, longMedianMin, longSigma float64) lifetimeMixture {
	return lifetimeMixture{
		shortFrac:    shortFrac,
		shortMeanMin: shortMeanMin,
		longMuLog:    math.Log(longMedianMin),
		longSigma:    longSigma,
	}
}

// sampleSteps draws a lifetime in grid steps (minimum one step).
func (m lifetimeMixture) sampleSteps(rng *sim.RNG, stepMinutes int) int {
	var minutes float64
	if rng.Bool(m.shortFrac) {
		minutes = m.shortMeanMin * rng.ExpFloat64()
	} else {
		minutes = rng.LogNormal(m.longMuLog, m.longSigma)
	}
	steps := int(math.Ceil(minutes / float64(stepMinutes)))
	if steps < 1 {
		steps = 1
	}
	return steps
}
