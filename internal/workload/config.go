// Package workload generates the synthetic week of private- and public-
// cloud activity that substitutes for the paper's proprietary Azure
// dataset. Every generative mechanism corresponds to a cause the paper
// names:
//
//   - private subscriptions deploy large, homogeneous, multi-region
//     services whose VMs share a utilization model (first-party services
//     behind geo load balancers);
//   - public subscriptions are numerous, small, mostly single-region, with
//     per-VM independent utilization and a wide VM-size range;
//   - public churn follows a clean diurnal auto-scaling arrival process;
//     private churn is a low-amplitude baseline plus occasional large
//     service-rollout bursts;
//   - lifetime mixtures are calibrated so the shortest lifetime bin holds
//     ~49% of private and ~81% of public within-week VMs (Figure 3a).
//
// The generator is fully deterministic given Config.Seed.
package workload

import (
	"fmt"
	"math"

	"cloudlens/internal/platform"
	"cloudlens/internal/sim"
)

// Config controls trace generation. Use DefaultConfig as the base and
// override selectively; the zero value is not valid.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies subscription counts and churn rates. 1.0 yields a
	// laptop-sized universe (roughly 25-30k VMs); analyses are
	// shape-invariant in Scale.
	Scale float64
	// Grid is the observation window; DefaultConfig uses sim.WeekGrid.
	Grid sim.Grid
	// Topology is the physical substrate; nil selects DefaultTopology.
	Topology *platform.Topology

	Private PrivateConfig
	Public  PublicConfig
	Special SpecialConfig

	// Placement ablates allocator-policy ingredients (affinity, rack
	// spread) for the design-choice experiments; the zero value is the
	// full policy.
	Placement platform.AllocatorOptions
}

// PrivateConfig parameterizes the first-party workload model.
type PrivateConfig struct {
	// Subscriptions is the subscription count at Scale 1.
	Subscriptions int
	// SingleRegionProb is the chance a subscription deploys into exactly
	// one region (Figure 4a: slightly above half).
	SingleRegionProb float64
	// MaxExtraRegions bounds the Zipf-distributed extra region count of
	// multi-region subscriptions.
	MaxExtraRegions int
	// RegionZipfS is the Zipf exponent for extra regions.
	RegionZipfS float64
	// SizeMu/SizeSigma parameterize the log-normal per-region deployment
	// size.
	SizeMu, SizeSigma float64
	// RegionSizeExp couples deployment size to region count: total size
	// scales as regions^RegionSizeExp, making multi-region subscriptions
	// the heavy core users (Figure 4b: only ~40% of private cores belong
	// to single-region subscriptions).
	RegionSizeExp float64
	// PatternWeights orders diurnal, stable, irregular, hourly-peak
	// (Figure 5d: private is diurnal-heavy with a visible hourly-peak
	// share).
	PatternWeights [4]float64
	// RegionAgnosticProb is the chance a multi-region service is behind
	// a geo load balancer and therefore UTC-anchored (Figure 7c).
	RegionAgnosticProb float64
	// ShortLifetimeFrac is the churn mixture weight of the short-lived
	// exponential component.
	ShortLifetimeFrac float64
	// ShortLifetimeMeanMin is the mean of the short component in
	// minutes.
	ShortLifetimeMeanMin float64
	// LongLifetimeMedianMin / LongLifetimeSigma parameterize the
	// log-normal long component.
	LongLifetimeMedianMin float64
	LongLifetimeSigma     float64
	// ChurnPerRegionHour is the mean baseline VM creations per region
	// per hour at Scale 1.
	ChurnPerRegionHour float64
	// ChurnDiurnalAmp is the relative diurnal amplitude of the baseline
	// churn (private churn is only mildly diurnal).
	ChurnDiurnalAmp float64
	// ChurnWeekendFactor scales churn on weekends.
	ChurnWeekendFactor float64
	// Bursts is the number of service-rollout bursts in the week at
	// Scale 1 (the spikes of Figures 3b/3c).
	Bursts int
	// BurstSizeMin/Max bound the VMs created per burst.
	BurstSizeMin, BurstSizeMax int
	// BaseVMFraction is the share of a deployment present since before
	// the window (long-running VMs).
	BaseVMFraction float64
	// IndependentVMPatterns ablates the service-shared utilization
	// templates: when set, every private VM draws an independent model,
	// as public VMs do. This removes the node-level homogeneity that
	// drives Figure 7(a) — the ablation demonstrating that shared
	// first-party service behaviour, not placement, causes the high
	// VM-to-node correlation.
	IndependentVMPatterns bool
}

// PublicConfig parameterizes the third-party workload model.
type PublicConfig struct {
	Subscriptions    int
	SingleRegionProb float64
	MaxExtraRegions  int
	RegionZipfS      float64
	SizeMu           float64
	SizeSigma        float64
	RegionSizeExp    float64
	// PatternWeights orders diurnal, stable, irregular, hourly-peak
	// (Figure 5d: public is stable-heavy, hourly-peak is rare).
	PatternWeights        [4]float64
	ShortLifetimeFrac     float64
	ShortLifetimeMeanMin  float64
	LongLifetimeMedianMin float64
	LongLifetimeSigma     float64
	// ChurnPerRegionHour is the peak auto-scaling creation rate per
	// region per hour at Scale 1; the realized rate follows a clean
	// diurnal curve (Figure 3c).
	ChurnPerRegionHour float64
	// ChurnDiurnalAmp is the relative diurnal amplitude (public churn is
	// strongly diurnal).
	ChurnDiurnalAmp    float64
	ChurnWeekendFactor float64
	// DailyScalerFraction is the share of a public deployment handled by
	// auto-scaling: these slots spawn a VM each weekday morning and
	// retire it in the evening, producing the weekday diurnal swing and
	// weekend decrease of total VM counts (Figure 3b).
	DailyScalerFraction float64
	BaseVMFraction      float64
}

// SpecialConfig pins down the named case studies.
type SpecialConfig struct {
	// ServiceXRegions are the deployment regions of ServiceX, the
	// region-agnostic, geo-load-balanced service of Figure 7(c) and the
	// Canada pilot. The first entry must be the Canada source region.
	ServiceXRegions []string
	// ServiceXVMsPerRegion is the ServiceX deployment size per region.
	ServiceXVMsPerRegion int
	// CanadaSource / CanadaDest name the pilot regions.
	CanadaSource, CanadaDest string
	// CanadaFillerVMs is the number of additional private filler VMs
	// pinned to the source region to make it "hot".
	CanadaFillerVMs int
	// CanadaDestVMs is the light private load of the destination.
	CanadaDestVMs int
}

// DefaultConfig returns the calibrated configuration used throughout the
// reproduction. See DESIGN.md for the calibration targets.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:  seed,
		Scale: 1,
		Grid:  sim.WeekGrid(),
		Private: PrivateConfig{
			Subscriptions:         60,
			SingleRegionProb:      0.55,
			MaxExtraRegions:       7,
			RegionZipfS:           1.2,
			SizeMu:                math.Log(25),
			SizeSigma:             0.9,
			RegionSizeExp:         0.9,
			PatternWeights:        [4]float64{0.55, 0.15, 0.10, 0.20},
			RegionAgnosticProb:    0.75,
			ShortLifetimeFrac:     0.88,
			ShortLifetimeMeanMin:  12,
			LongLifetimeMedianMin: 240,
			LongLifetimeSigma:     1.2,
			ChurnPerRegionHour:    2.0,
			ChurnDiurnalAmp:       0.35,
			ChurnWeekendFactor:    0.7,
			Bursts:                28,
			BurstSizeMin:          40,
			BurstSizeMax:          160,
			BaseVMFraction:        0.85,
		},
		Public: PublicConfig{
			Subscriptions:         2200,
			SingleRegionProb:      0.78,
			MaxExtraRegions:       2,
			RegionZipfS:           1.5,
			SizeMu:                math.Log(1.8),
			SizeSigma:             1.0,
			RegionSizeExp:         0.5,
			PatternWeights:        [4]float64{0.30, 0.47, 0.18, 0.05},
			ShortLifetimeFrac:     0.94,
			ShortLifetimeMeanMin:  12,
			LongLifetimeMedianMin: 180,
			LongLifetimeSigma:     1.3,
			ChurnPerRegionHour:    12.0,
			ChurnDiurnalAmp:       0.60,
			ChurnWeekendFactor:    0.75,
			DailyScalerFraction:   0.10,
			BaseVMFraction:        0.9,
		},
		Special: SpecialConfig{
			ServiceXRegions: []string{
				"canada-a", "us-east", "us-central", "us-west", "us-alaska", "us-hawaii",
			},
			ServiceXVMsPerRegion: 28,
			CanadaSource:         "canada-a",
			CanadaDest:           "canada-b",
			CanadaFillerVMs:      340,
			CanadaDestVMs:        130,
		},
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("workload: scale must be positive, got %v", c.Scale)
	}
	if c.Grid.N <= 0 || c.Grid.Step <= 0 {
		return fmt.Errorf("workload: invalid grid")
	}
	// The CPU generator's scaler, churn, and lifetime arithmetic works in
	// whole minutes (lifetimes are drawn in minutes and divided by
	// StepMinutes), so it needs a whole-minute step that divides an hour.
	// The serverless generator has no such restriction; see
	// ServerlessConfig.
	if c.Grid.StepMinutes() < 1 || c.Grid.StepsPerHour() == 0 {
		return fmt.Errorf("workload: grid step %v must be a whole number of minutes dividing an hour", c.Grid.Step)
	}
	if c.Private.Subscriptions <= 0 || c.Public.Subscriptions <= 0 {
		return fmt.Errorf("workload: subscription counts must be positive")
	}
	for _, w := range c.Private.PatternWeights {
		if w < 0 {
			return fmt.Errorf("workload: negative private pattern weight")
		}
	}
	for _, w := range c.Public.PatternWeights {
		if w < 0 {
			return fmt.Errorf("workload: negative public pattern weight")
		}
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	return nil
}
