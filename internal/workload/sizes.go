package workload

import (
	"math"

	"cloudlens/internal/core"
	"cloudlens/internal/sim"
)

// Private first-party services use a narrow SKU menu: mid-sized VMs with a
// standard memory-per-core ratio. Figure 2 (left) shows the private size
// distribution concentrated in the bulk.
var (
	privateCores       = []int{2, 4, 8, 16}
	privateCoreWeights = []float64{0.25, 0.40, 0.25, 0.10}
	privateMemRatios   = []int{2, 4, 8}
	privateMemWeights  = []float64{0.15, 0.70, 0.15}
)

// Public customers request everything from single-core scratch VMs to
// 64-core memory monsters; Figure 2 (right) extends to both the bottom-left
// and top-right corners.
var (
	publicCores       = []int{1, 2, 4, 8, 16, 32, 64}
	publicCoreWeights = []float64{0.25, 0.32, 0.23, 0.11, 0.06, 0.025, 0.005}
	publicMemRatios   = []int{1, 2, 4, 8, 16}
	publicMemWeights  = []float64{0.08, 0.22, 0.45, 0.19, 0.06}
)

// samplePrivateSize draws a first-party service VM size.
func samplePrivateSize(rng *sim.RNG) core.VMSize {
	cores := privateCores[rng.Categorical(privateCoreWeights)]
	ratio := privateMemRatios[rng.Categorical(privateMemWeights)]
	return core.VMSize{Cores: cores, MemoryGB: cores * ratio}
}

// samplePublicSize draws a third-party VM size. Memory is capped at the
// node SKU so the largest requested VM still fits one node.
func samplePublicSize(rng *sim.RNG) core.VMSize {
	cores := publicCores[rng.Categorical(publicCoreWeights)]
	ratio := publicMemRatios[rng.Categorical(publicMemWeights)]
	mem := cores * ratio
	if mem > 256 {
		mem = 256
	}
	return core.VMSize{Cores: cores, MemoryGB: mem}
}

// deploymentSize draws a subscription's total VM count given its region
// count, coupling size to spread via the configured exponent. The draw is
// capped at maxTotal to keep the log-normal tail from overwhelming a single
// region's capacity (the real fleet is thousands of times larger than the
// simulated one, so extreme deployments must be truncated proportionally).
func deploymentSize(rng *sim.RNG, mu, sigma, regionExp float64, regions, maxTotal int) int {
	base := rng.LogNormal(mu, sigma)
	n := int(math.Round(base * math.Pow(float64(regions), regionExp)))
	if n < 1 {
		n = 1
	}
	if maxTotal > 0 && n > maxTotal {
		n = maxTotal
	}
	return n
}

// splitAcrossRegions partitions total VMs across k regions with uneven
// random weights (deployments are rarely perfectly balanced). Every region
// receives at least one VM when total >= k.
func splitAcrossRegions(rng *sim.RNG, total, k int) []int {
	if k <= 1 {
		return []int{total}
	}
	weights := make([]float64, k)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.4 + rng.Float64()
		sum += weights[i]
	}
	out := make([]int, k)
	assigned := 0
	for i := range out {
		out[i] = int(math.Round(float64(total) * weights[i] / sum))
		assigned += out[i]
	}
	// Fix rounding drift on the first region.
	out[0] += total - assigned
	if out[0] < 0 {
		out[0] = 0
	}
	// Guarantee presence in every region when possible.
	for i := range out {
		if out[i] == 0 && total >= k {
			out[i] = 1
		}
	}
	return out
}
