package workload

import (
	"math"
	"testing"

	"cloudlens/internal/core"
	"cloudlens/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero scale", mutate: func(c *Config) { c.Scale = 0 }},
		{name: "negative scale", mutate: func(c *Config) { c.Scale = -1 }},
		{name: "bad grid", mutate: func(c *Config) { c.Grid.N = 0 }},
		{name: "no private subs", mutate: func(c *Config) { c.Private.Subscriptions = 0 }},
		{name: "no public subs", mutate: func(c *Config) { c.Public.Subscriptions = 0 }},
		{name: "negative pattern weight", mutate: func(c *Config) { c.Private.PatternWeights[0] = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestDefaultTopology(t *testing.T) {
	topo := DefaultTopology(1)
	if err := topo.Validate(); err != nil {
		t.Fatalf("default topology invalid: %v", err)
	}
	var private, public, usRegions int
	for _, c := range topo.Clusters {
		switch c.Cloud {
		case core.Private:
			private++
		case core.Public:
			public++
		}
	}
	for _, r := range topo.Regions {
		if r.US {
			usRegions++
		}
	}
	// The paper samples a similar number of clusters from each platform
	// and studies ~10 US regions.
	if private == 0 || public == 0 {
		t.Fatal("missing clusters")
	}
	ratio := float64(public) / float64(private)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("cluster counts too asymmetric: %d private vs %d public", private, public)
	}
	if usRegions != 10 {
		t.Fatalf("US regions = %d, want 10", usRegions)
	}
	// Both pilot regions must exist with private capacity.
	for _, region := range []string{"canada-a", "canada-b"} {
		if topo.PhysicalCores(region, core.Private) == 0 {
			t.Fatalf("no private capacity in %s", region)
		}
	}
}

func TestDefaultTopologyScaling(t *testing.T) {
	small := DefaultTopology(0.1)
	big := DefaultTopology(2)
	if small.Clusters[0].Nodes < 8 {
		t.Fatalf("scaled-down cluster below floor: %d nodes", small.Clusters[0].Nodes)
	}
	if big.Clusters[0].Nodes <= small.Clusters[0].Nodes {
		t.Fatal("scale does not grow clusters")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.VMs) != len(b.VMs) {
		t.Fatalf("VM counts differ: %d vs %d", len(a.VMs), len(b.VMs))
	}
	for i := range a.VMs {
		if a.VMs[i] != b.VMs[i] {
			t.Fatalf("VM %d differs between runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.VMs) == len(b.VMs) {
		same := true
		for i := range a.VMs {
			if a.VMs[i].Usage.Seed != b.VMs[i].Usage.Seed {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateSmallScale(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Scale = 0.25
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Generate(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) >= len(full.VMs) {
		t.Fatalf("scale 0.25 produced %d VMs >= scale 1's %d", len(tr.VMs), len(full.VMs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("scaled trace invalid: %v", err)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Scale = -5
	if _, err := Generate(cfg); err == nil {
		t.Fatal("expected config error")
	}
}

func TestLifetimeMixtureShares(t *testing.T) {
	m := newLifetimeMixture(0.8, 12, 240, 1.2)
	rng := sim.NewRNG(11)
	short := 0
	const n = 20000
	for i := 0; i < n; i++ {
		steps := m.sampleSteps(rng, 5)
		if steps < 1 {
			t.Fatal("lifetime below one step")
		}
		if steps*5 < 30 {
			short++
		}
	}
	frac := float64(short) / n
	// Expected: 0.8 * P(Exp(12) < 30) + 0.2 * P(LogN < 30) ≈ 0.8*0.918 + small.
	if frac < 0.70 || frac > 0.85 {
		t.Fatalf("short-lifetime share %v outside expectation", frac)
	}
}

func TestSplitAcrossRegions(t *testing.T) {
	rng := sim.NewRNG(5)
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(6)
		total := k + rng.Intn(200)
		parts := splitAcrossRegions(rng, total, k)
		if len(parts) != k {
			t.Fatalf("parts = %d, want %d", len(parts), k)
		}
		sum := 0
		for _, p := range parts {
			if p < 0 {
				t.Fatalf("negative part: %v", parts)
			}
			if total >= k && p == 0 {
				t.Fatalf("empty region with total %d >= k %d: %v", total, k, parts)
			}
			sum += p
		}
		// Rounding plus the min-1 guarantee may drift by at most k.
		if diff := sum - total; diff < -k || diff > k {
			t.Fatalf("sum %d too far from total %d (parts %v)", sum, total, parts)
		}
	}
}

func TestRegionCountBounds(t *testing.T) {
	rng := sim.NewRNG(6)
	single := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := regionCount(rng, 0.55, 7, 1.2)
		if k < 1 || k > 8 {
			t.Fatalf("region count %d out of [1,8]", k)
		}
		if k == 1 {
			single++
		}
	}
	frac := float64(single) / n
	if math.Abs(frac-0.55-0.45/8.33) > 0.1 { // singleProb plus Zipf(7) returning 1... loose
		// Zipf(7,1.2) never returns 0 extras, so singles come only from
		// the direct branch; allow generous tolerance around 0.55.
		if frac < 0.5 || frac > 0.62 {
			t.Fatalf("single-region fraction %v, want ~0.55", frac)
		}
	}
}

func TestDailyScalersAreWeekdayDiurnal(t *testing.T) {
	cfg := DefaultConfig(8)
	topo := DefaultTopology(cfg.Scale)
	g := &generator{cfg: cfg, topo: topo}
	dep := serviceDeployment{
		sub:       "pub-test",
		name:      "dep-test",
		cloud:     core.Public,
		regions:   []string{"us-east"},
		perRegion: []int{100},
	}
	var specs []vmSpec
	g.emitDailyScalers(sim.NewRNG(1), &specs, dep, 0.2)
	if len(specs) == 0 {
		t.Fatal("no scaler VMs emitted")
	}
	tz := topo.TZOffsetMin("us-east")
	for _, s := range specs {
		mid := (s.created + s.deleted) / 2
		if mid >= cfg.Grid.N {
			mid = cfg.Grid.N - 1
		}
		if cfg.Grid.IsWeekend(mid, tz) {
			t.Fatalf("scaler VM centered on a weekend: [%d,%d)", s.created, s.deleted)
		}
		life := s.deleted - s.created
		if life < 9*12 || life > 14*12+1 {
			t.Fatalf("scaler lifetime %d steps outside the business-day range", life)
		}
	}
}

func TestBurstsCreateSpikes(t *testing.T) {
	cfg := DefaultConfig(10)
	topo := DefaultTopology(cfg.Scale)
	g := &generator{cfg: cfg, topo: topo}
	root := sim.NewRNG(cfg.Seed)
	g.genPrivate(root.Fork("private"))
	burstVMs := len(g.genBursts(root.Fork("bursts")))
	minExpected := cfg.Private.Bursts * cfg.Private.BurstSizeMin
	if burstVMs < minExpected {
		t.Fatalf("bursts produced %d VMs, want >= %d", burstVMs, minExpected)
	}
}

func TestServiceXPresence(t *testing.T) {
	tr, err := Generate(DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	regions := make(map[string]int)
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if v.Service != ServiceXName {
			continue
		}
		regions[v.Region]++
		if !v.Usage.UTCAnchored {
			t.Fatal("ServiceX VM not UTC-anchored")
		}
		if v.Cloud != core.Private {
			t.Fatal("ServiceX VM not in the private cloud")
		}
	}
	if len(regions) < 5 {
		t.Fatalf("ServiceX deployed in %d regions, want >= 5", len(regions))
	}
	// The Canada source region hosts a double share.
	if regions["canada-a"] <= regions["us-east"] {
		t.Fatalf("canada-a share %d not above us-east %d", regions["canada-a"], regions["us-east"])
	}
}

func TestAllocationsRespectTopology(t *testing.T) {
	tr, err := Generate(DefaultConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.VMs {
		v := &tr.VMs[i]
		cl, ok := tr.Topology.ClusterByID(v.Node.Cluster)
		if !ok {
			t.Fatalf("VM %d on unknown cluster %s", v.ID, v.Node.Cluster)
		}
		if cl.Region != v.Region {
			t.Fatalf("VM %d region %s but cluster in %s", v.ID, v.Region, cl.Region)
		}
		if cl.Cloud != v.Cloud {
			t.Fatalf("VM %d cloud mismatch", v.ID)
		}
		if v.Node.Index < 0 || v.Node.Index >= cl.Nodes {
			t.Fatalf("VM %d node index %d out of range", v.ID, v.Node.Index)
		}
		if v.Rack != cl.RackOf(v.Node.Index) {
			t.Fatalf("VM %d rack %d inconsistent with node %d", v.ID, v.Rack, v.Node.Index)
		}
	}
}

// TestNoNodeOvercommit verifies the generator's placement never exceeds
// physical node capacity at any sampled instant.
func TestNoNodeOvercommit(t *testing.T) {
	tr, err := Generate(DefaultConfig(14))
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{0, tr.SnapshotStep(), tr.Grid.N - 1} {
		cores := make(map[core.NodeRef]int)
		mem := make(map[core.NodeRef]int)
		for i := range tr.VMs {
			v := &tr.VMs[i]
			if !v.AliveAt(step) {
				continue
			}
			cores[v.Node] += v.Size.Cores
			mem[v.Node] += v.Size.MemoryGB
		}
		for node, used := range cores {
			cl, _ := tr.Topology.ClusterByID(node.Cluster)
			if used > cl.SKU.Cores {
				t.Fatalf("step %d: node %v overcommitted on cores: %d > %d", step, node, used, cl.SKU.Cores)
			}
			if mem[node] > cl.SKU.MemoryGB {
				t.Fatalf("step %d: node %v overcommitted on memory", step, node)
			}
		}
	}
}
