// Package obs is the observability layer of the serving and streaming
// stack: a dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition) plus slog-based
// structured logging helpers.
//
// The design goal is an allocation-free hot path. Instruments are resolved
// once — at package init or route registration — into typed handles; every
// subsequent Inc/Add/Set/Observe is a handful of atomic operations with no
// map lookups, no interface boxing, and no allocation. Exposition walks the
// registry under its lock, reading the same atomics, so /metrics can be
// scraped while ingestion runs.
//
// Metric names follow Prometheus conventions (snake_case, a _total suffix
// on counters, base-unit _seconds histograms). Every cloudlens series is
// prefixed "cloudlens_"; the catalog lives in DESIGN.md §7.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Package-level instruments across
// cloudlens register here at init, so any binary that links a subsystem
// exposes its series (at zero) from the first scrape.
var Default = NewRegistry()

// Label is one constant name="value" pair attached to an instrument at
// registration time. Labels are fixed for the instrument's lifetime —
// dynamic label values would force a map lookup per observation, which the
// hot path forbids; register one instrument per label combination instead.
type Label struct {
	Name, Value string
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative for Prometheus semantics.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// SetInt stores an integer value (sugar for queue depths and sizes).
func (g *Gauge) SetInt(n int) { g.Set(float64(n)) }

// Add adds x via a compare-and-swap loop; allocation-free.
func (g *Gauge) Add(x float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper edges
// in ascending order; an implicit +Inf bucket catches the rest. Observe is
// a linear scan over the bounds plus three atomic adds — no allocation, no
// locks — so it is safe on per-request and per-batch paths.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last slot is +Inf
	count  atomic.Int64
	sum    Gauge // atomic float64 accumulator
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(x)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefLatencyBuckets spans 100µs to 10s — wide enough for both sub-ms
// cached API reads and multi-second cold summaries or knowledge-base folds.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// ExpBuckets returns n buckets starting at start, each factor apart.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// instrument is one (label-set, handle) pair inside a family.
type instrument struct {
	labels string // rendered {a="b",c="d"} suffix, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // callback gauges: evaluated at exposition
}

// family groups all instruments sharing a metric name; HELP/TYPE are
// emitted once per family.
type family struct {
	name, help string
	kind       kind
	bounds     []float64 // histograms: shared bucket bounds
	insts      []*instrument
	byLabels   map[string]*instrument
}

// Registry holds metric families in registration order and renders them in
// the Prometheus text exposition format. All methods are safe for
// concurrent use; instrument handles obtained from a registry stay valid
// for its lifetime.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter returns the counter registered under name and labels, creating
// it on first use. Re-registering the same (name, labels) returns the same
// handle; registering a name under a different metric kind panics, since
// that is a programming error the exposition format cannot represent.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.instrument(name, help, counterKind, nil, labels)
	return inst.c
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.instrument(name, help, gaugeKind, nil, labels)
	return inst.g
}

// GaugeFunc registers a callback gauge: fn is evaluated at exposition
// time instead of pushing values through Set, the right shape for metrics
// that are derived state (snapshot age, queue depth read from elsewhere).
// fn must be safe for concurrent use. Re-registering the same (name,
// labels) replaces the callback — last one wins — so test servers that
// rebuild their handler keep the series pointed at the live source.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	inst := r.instrument(name, help, gaugeKind, nil, labels)
	r.mu.Lock()
	inst.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use with the given bucket bounds (ascending upper
// edges; +Inf is implicit). All instruments of one family share the bounds
// passed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	inst := r.instrument(name, help, histogramKind, bounds, labels)
	return inst.h
}

func (r *Registry) instrument(name, help string, k kind, bounds []float64, labels []Label) *instrument {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, bounds: bounds, byLabels: make(map[string]*instrument)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	if inst := f.byLabels[key]; inst != nil {
		return inst
	}
	inst := &instrument{labels: key}
	switch k {
	case counterKind:
		inst.c = new(Counter)
	case gaugeKind:
		inst.g = new(Gauge)
	case histogramKind:
		inst.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
	}
	f.byLabels[key] = inst
	f.insts = append(f.insts, inst)
	return inst
}

// renderLabels renders a deterministic {a="b",c="d"} suffix. Label values
// are escaped per the exposition format (backslash, quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// withLabel splices an extra label into an already rendered label suffix —
// used for the le="..." bucket label of histogram exposition.
func withLabel(rendered, name, value string) string {
	extra := name + `="` + value + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders every family in the Prometheus text format
// (version 0.0.4). Values are read through the same atomics the hot paths
// write, so rendering during ingestion yields a consistent-enough snapshot
// without stalling writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		r.mu.Lock()
		insts := make([]*instrument, len(f.insts))
		copy(insts, f.insts)
		r.mu.Unlock()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, inst := range insts {
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, inst.labels, inst.c.Value())
			case gaugeKind:
				r.mu.Lock()
				fn := inst.fn
				r.mu.Unlock()
				v := inst.g.Value()
				if fn != nil {
					v = fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, inst.labels, formatFloat(v))
			case histogramKind:
				var cum int64
				for i, bound := range f.bounds {
					cum += inst.h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(inst.labels, "le", formatFloat(bound)), cum)
				}
				cum += inst.h.counts[len(f.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(inst.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, inst.labels, formatFloat(inst.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, inst.labels, inst.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ServeHTTP makes the registry an http.Handler for GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = r.WritePrometheus(w)
}
