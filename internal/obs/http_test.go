package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestMiddlewareStatusClasses(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, nil)
	h := m.Wrap("/echo", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		code, _ := strconv.Atoi(req.URL.Query().Get("code"))
		if code == 0 {
			// No explicit WriteHeader: an implicit 200 must count as 2xx.
			_, _ = w.Write([]byte("ok"))
			return
		}
		w.WriteHeader(code)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, code := range []int{0, 0, 204, 404, 404, 404, 500, 302} {
		q := ""
		if code != 0 {
			q = "?code=" + strconv.Itoa(code)
		}
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	got := exposition(t, r)
	want := map[string]float64{
		`cloudlens_http_requests_total{class="2xx",route="/echo"}`: 3,
		`cloudlens_http_requests_total{class="3xx",route="/echo"}`: 1,
		`cloudlens_http_requests_total{class="4xx",route="/echo"}`: 3,
		`cloudlens_http_requests_total{class="5xx",route="/echo"}`: 1,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	if got[`cloudlens_http_request_duration_seconds_count{route="/echo"}`] != 8 {
		t.Errorf("latency count = %v, want 8",
			got[`cloudlens_http_request_duration_seconds_count{route="/echo"}`])
	}
	if got[`cloudlens_http_inflight_requests`] != 0 {
		t.Errorf("inflight after drain = %v, want 0", got[`cloudlens_http_inflight_requests`])
	}
}

func TestMiddlewareRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	r := NewRegistry()
	m := NewHTTPMetrics(r, logger)
	h := m.Wrap("/logged", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	req := httptest.NewRequest(http.MethodGet, "/logged?x=1", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)

	line := buf.String()
	for _, want := range []string{"route=/logged", "method=GET", "status=418"} {
		if !strings.Contains(line, want) {
			t.Errorf("request log missing %q in %q", want, line)
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "").Add(7)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 7") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}
