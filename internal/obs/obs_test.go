package obs

import (
	"bufio"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition parses the subset of the Prometheus text format the
// registry emits: one float sample per non-comment line, keyed by the full
// series id (name plus rendered labels).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func exposition(t *testing.T, r *Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	return parseExposition(t, b.String())
}

func TestCounterGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.", Label{"kind", "a"})
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "Depth.")
	g.Set(3)
	g.Add(-0.5)

	got := exposition(t, r)
	if v := got[`test_events_total{kind="a"}`]; v != 42 {
		t.Errorf("counter round-trip = %v, want 42", v)
	}
	if v := got[`test_depth`]; v != 2.5 {
		t.Errorf("gauge round-trip = %v, want 2.5", v)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "", Label{"k", "v"})
	b := r.Counter("test_total", "", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("test_total", "", Label{"k", "w"})
	if other == a {
		t.Fatal("distinct labels share a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "")
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.01, 0.1, 1}, Label{"route", "/x"})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	got := exposition(t, r)
	wantBuckets := map[string]float64{
		`test_seconds_bucket{route="/x",le="0.01"}`: 1,
		`test_seconds_bucket{route="/x",le="0.1"}`:  3,
		`test_seconds_bucket{route="/x",le="1"}`:    4,
		`test_seconds_bucket{route="/x",le="+Inf"}`: 5,
	}
	for k, want := range wantBuckets {
		if got[k] != want {
			t.Errorf("%s = %v, want %v", k, got[k], want)
		}
	}
	if v := got[`test_seconds_count{route="/x"}`]; v != 5 {
		t.Errorf("count = %v, want 5", v)
	}
	if v := got[`test_seconds_sum{route="/x"}`]; math.Abs(v-5.605) > 1e-9 {
		t.Errorf("sum = %v, want 5.605", v)
	}
	// Cumulative buckets must be monotonic and end at the total count.
	if got[`test_seconds_bucket{route="/x",le="+Inf"}`] != got[`test_seconds_count{route="/x"}`] {
		t.Error("+Inf bucket disagrees with _count")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "", Label{"q", `a"b\c`}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_total{q="a\"b\\c"} 1`) {
		t.Errorf("escaping broken:\n%s", b.String())
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	h := r.Histogram("test_seconds", "", DefLatencyBuckets)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		exposition(t, r)
	}
	close(stop)
	wg.Wait()
	got := exposition(t, r)
	if got["test_total"] != float64(c.Value()) {
		t.Errorf("final scrape %v != counter %d", got["test_total"], c.Value())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR"} {
		lv, err := ParseLevel(in)
		if err != nil || lv.String() != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, lv, err)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("bogus level accepted")
	}
}
