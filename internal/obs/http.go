package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// HTTPMetrics instruments an HTTP route table:
//
//	cloudlens_http_requests_total{route,class}        status-class counters
//	cloudlens_http_request_duration_seconds{route}    latency histograms
//	cloudlens_http_inflight_requests                  in-flight gauge
//
// Wrap resolves the per-route instruments once, at route registration, so
// the per-request path touches only pre-bound atomics. An optional logger
// emits one debug record per request (route, method, status, duration).
type HTTPMetrics struct {
	reg      *Registry
	inflight *Gauge
	logger   *slog.Logger
}

// statusClasses are the exposition values of the class label, indexed by
// status/100.
var statusClasses = [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}

// NewHTTPMetrics returns middleware bound to the registry. logger may be
// nil to disable request logging.
func NewHTTPMetrics(reg *Registry, logger *slog.Logger) *HTTPMetrics {
	return &HTTPMetrics{
		reg:      reg,
		inflight: reg.Gauge("cloudlens_http_inflight_requests", "HTTP requests currently being served."),
		logger:   logger,
	}
}

// Wrap instruments h under the given route label. Call it once per route;
// the returned handler is what goes into the mux.
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	latency := m.reg.Histogram(
		"cloudlens_http_request_duration_seconds",
		"HTTP request latency by route.",
		DefLatencyBuckets, Label{"route", route})
	var classes [6]*Counter
	for i := 1; i < len(classes); i++ {
		classes[i] = m.reg.Counter(
			"cloudlens_http_requests_total",
			"HTTP requests by route and status class.",
			Label{"route", route}, Label{"class", statusClasses[i]})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		start := time.Now()
		sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(&sw, r)
		elapsed := time.Since(start)
		latency.Observe(elapsed.Seconds())
		if c := sw.status / 100; c >= 1 && c < len(classes) {
			classes[c].Inc()
		}
		m.inflight.Add(-1)
		if m.logger != nil {
			m.logger.Debug("http request",
				"route", route,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration", elapsed)
		}
	})
}

// statusWriter captures the response status for class counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
