package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger returns a text-format slog logger writing to w at the given
// level string. It is the one logger constructor the binaries share, so
// every subsystem logs the same shape.
func NewLogger(w io.Writer, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})), nil
}
