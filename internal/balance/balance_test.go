package balance

import (
	"sync"
	"testing"

	"cloudlens/internal/core"
	"cloudlens/internal/kb"
	"cloudlens/internal/trace"
	"cloudlens/internal/workload"
)

var (
	trOnce  sync.Once
	tr      *trace.Trace
	store   *kb.Store
	trErr   error
	outcome Outcome
)

func sharedPilot(t *testing.T) (*trace.Trace, *kb.Store, Outcome) {
	t.Helper()
	trOnce.Do(func() {
		tr, trErr = workload.Generate(workload.DefaultConfig(35))
		if trErr != nil {
			return
		}
		store = kb.Extract(tr, kb.ExtractOptions{})
		outcome, trErr = Run(tr, store, "canada-a", "canada-b")
	})
	if trErr != nil {
		t.Fatalf("pilot setup: %v", trErr)
	}
	return tr, store, outcome
}

func TestRecommendPicksServiceX(t *testing.T) {
	_, _, out := sharedPilot(t)
	if out.Plan.Service != workload.ServiceXName {
		t.Fatalf("recommended %q, want %q", out.Plan.Service, workload.ServiceXName)
	}
	if out.Plan.AgnosticScore < kb.RegionAgnosticThreshold {
		t.Fatalf("agnostic score %.2f below threshold", out.Plan.AgnosticScore)
	}
	if out.Plan.VMs == 0 || out.Plan.Cores == 0 {
		t.Fatalf("empty plan: %+v", out.Plan)
	}
}

func TestPilotMatchesPaperShape(t *testing.T) {
	_, _, out := sharedPilot(t)
	// Source region: both health metrics must decrease, as in the paper
	// (utilization rate 42%->37%, underutilized cores 23%->16%).
	if out.SourceAfter.UtilizationRate >= out.SourceBefore.UtilizationRate {
		t.Fatalf("source utilization did not drop: %.3f -> %.3f",
			out.SourceBefore.UtilizationRate, out.SourceAfter.UtilizationRate)
	}
	if out.SourceAfter.UnderutilizedShare >= out.SourceBefore.UnderutilizedShare {
		t.Fatalf("source underutilized share did not drop: %.3f -> %.3f",
			out.SourceBefore.UnderutilizedShare, out.SourceAfter.UnderutilizedShare)
	}
	// Destination gains exactly what the source lost.
	srcDelta := out.SourceBefore.AllocatedCores - out.SourceAfter.AllocatedCores
	dstDelta := out.DestAfter.AllocatedCores - out.DestBefore.AllocatedCores
	if srcDelta <= 0 {
		t.Fatal("no cores moved")
	}
	if diff := srcDelta - dstDelta; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("moved cores not conserved: src -%.1f, dst +%.1f", srcDelta, dstDelta)
	}
	if !out.HealthImproved() {
		t.Fatal("pilot did not improve source health")
	}
	// The source was "hot" relative to the destination.
	if out.SourceBefore.UtilizationRate <= out.DestBefore.UtilizationRate {
		t.Fatal("source not hotter than destination before the shift")
	}
}

func TestMetricsSanity(t *testing.T) {
	trc, _, _ := sharedPilot(t)
	m := Metrics(trc, core.Private, "canada-a", nil, "")
	if m.PhysicalCores == 0 {
		t.Fatal("no physical cores")
	}
	if m.UtilizationRate <= 0 || m.UtilizationRate > 1 {
		t.Fatalf("utilization rate %v out of (0,1]", m.UtilizationRate)
	}
	if m.UnderutilizedShare < 0 || m.UnderutilizedShare > 1 {
		t.Fatalf("underutilized share %v out of [0,1]", m.UnderutilizedShare)
	}
	ghost := Metrics(trc, core.Private, "atlantis", nil, "")
	if ghost.PhysicalCores != 0 || ghost.UtilizationRate != 0 {
		t.Fatalf("metrics of unknown region non-zero: %+v", ghost)
	}
}

func TestRecommendErrors(t *testing.T) {
	trc, st, _ := sharedPilot(t)
	if _, err := Recommend(trc, st, "atlantis", "canada-b"); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := Recommend(trc, st, "canada-a", "atlantis"); err == nil {
		t.Fatal("unknown destination accepted")
	}
	// A region with no region-agnostic workloads must be rejected: the
	// public-heavy eu-north has no qualifying private service.
	if _, err := Recommend(trc, kb.NewStore(), "canada-a", "canada-b"); err == nil {
		t.Fatal("empty knowledge base produced a recommendation")
	}
}

func TestApplyIsPure(t *testing.T) {
	trc, _, out := sharedPilot(t)
	// Apply must not mutate the trace itself: the moved VMs keep their
	// original region labels in the trace records.
	movedCount := 0
	for i := range trc.VMs {
		v := &trc.VMs[i]
		if v.Service == out.Plan.Service && v.Region == "canada-b" {
			movedCount++
		}
	}
	if movedCount != 0 {
		t.Fatalf("Apply mutated the trace: %d ServiceX VMs relabeled", movedCount)
	}
	if len(out.Moved) != out.Plan.VMs && len(out.Moved) < out.Plan.VMs {
		t.Fatalf("moved list %d smaller than plan %d", len(out.Moved), out.Plan.VMs)
	}
}
