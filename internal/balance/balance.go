// Package balance reproduces the paper's Section IV-B pilot: shifting a
// region-agnostic workload from a "hot" region with many underutilized
// cores (Canada-A) to an idle one (Canada-B). In the paper the shift
// reduced Canada-A's underutilized-core percentage from 23% to 16% and its
// core utilization rate from 42% to 37%, while Canada-B barely moved — an
// improvement in the source region's health at negligible destination cost.
//
// The candidate selection consumes workload-knowledge-base profiles: only
// subscriptions whose cross-region utilization correlation marks them as
// region-agnostic (and whose service the case study names) are eligible,
// since region-sensitive workloads cannot be moved without hurting users.
package balance

import (
	"fmt"
	"sort"

	"cloudlens/internal/core"
	"cloudlens/internal/kb"
	"cloudlens/internal/trace"
)

// UnderutilizedThreshold is the mean-utilization fraction below which a
// VM's cores count as underutilized.
const UnderutilizedThreshold = 0.2

// RegionMetrics is the capacity-health scorecard of one region, following
// the pilot's two measures.
type RegionMetrics struct {
	Region string `json:"region"`
	// PhysicalCores is the private-platform physical capacity.
	PhysicalCores int `json:"physicalCores"`
	// AllocatedCores is the time-averaged allocated core count.
	AllocatedCores float64 `json:"allocatedCores"`
	// UtilizationRate is AllocatedCores / PhysicalCores — the pilot's
	// "core utilization rate".
	UtilizationRate float64 `json:"utilizationRate"`
	// UnderutilizedShare is the share of allocated cores belonging to
	// VMs whose mean utilization is below UnderutilizedThreshold — the
	// pilot's "underutilized core percentage".
	UnderutilizedShare float64 `json:"underutilizedShare"`
}

// Plan is a recommended workload shift.
type Plan struct {
	Service      string              `json:"service"`
	Subscription core.SubscriptionID `json:"subscription"`
	Source       string              `json:"source"`
	Destination  string              `json:"destination"`
	VMs          int                 `json:"vms"`
	Cores        int                 `json:"cores"`
	// AgnosticScore is the knowledge-base cross-region correlation that
	// qualified the workload.
	AgnosticScore float64 `json:"agnosticScore"`
}

// Outcome is the pilot's before/after comparison.
type Outcome struct {
	Plan         Plan          `json:"plan"`
	SourceBefore RegionMetrics `json:"sourceBefore"`
	SourceAfter  RegionMetrics `json:"sourceAfter"`
	DestBefore   RegionMetrics `json:"destBefore"`
	DestAfter    RegionMetrics `json:"destAfter"`
	Cloud        core.Cloud    `json:"cloud"`
	// Moved lists the VM IDs the shift relabeled.
	Moved []core.VMID `json:"moved"`
}

// Metrics computes a region's scorecard from the trace, optionally
// relabeling the VMs in moved to the destination region.
func Metrics(t *trace.Trace, cloud core.Cloud, region string, moved map[core.VMID]bool, movedTo string) RegionMetrics {
	m := RegionMetrics{Region: region}
	m.PhysicalCores = t.Topology.PhysicalCores(region, cloud)
	if m.PhysicalCores == 0 {
		return m
	}
	var allocCoreSteps, underCoreSteps float64
	for i := range t.VMs {
		v := &t.VMs[i]
		if v.Cloud != cloud {
			continue
		}
		effRegion := v.Region
		if moved != nil && moved[v.ID] {
			effRegion = movedTo
		}
		if effRegion != region {
			continue
		}
		from, to, ok := v.AliveRange(t.Grid.N)
		if !ok {
			continue
		}
		steps := float64(to - from)
		cores := float64(v.Size.Cores)
		allocCoreSteps += cores * steps
		if v.Usage.MeanOver(t.Grid, from, to) < UnderutilizedThreshold {
			underCoreSteps += cores * steps
		}
	}
	m.AllocatedCores = allocCoreSteps / float64(t.Grid.N)
	m.UtilizationRate = m.AllocatedCores / float64(m.PhysicalCores)
	if allocCoreSteps > 0 {
		m.UnderutilizedShare = underCoreSteps / allocCoreSteps
	}
	return m
}

// Recommend selects the shift candidate: among the source region's private
// VMs, the service whose subscription profile is region-agnostic
// (score >= kb.RegionAgnosticThreshold) with the most cores. It returns an
// error when the knowledge base offers no region-agnostic candidate — the
// paper stresses that utilization analysis alone is insufficient and only
// confirmed region-agnostic workloads may move.
func Recommend(t *trace.Trace, store *kb.Store, source, dest string) (Plan, error) {
	if _, ok := t.Topology.RegionByName(source); !ok {
		return Plan{}, fmt.Errorf("balance: unknown source region %q", source)
	}
	if _, ok := t.Topology.RegionByName(dest); !ok {
		return Plan{}, fmt.Errorf("balance: unknown destination region %q", dest)
	}
	type cand struct {
		service string
		sub     core.SubscriptionID
		vms     int
		cores   int
		score   float64
	}
	best := cand{}
	snap := t.SnapshotStep()
	byService := make(map[string]*cand)
	for i := range t.VMs {
		v := &t.VMs[i]
		if v.Cloud != core.Private || v.Region != source || !v.AliveAt(snap) {
			continue
		}
		c := byService[v.Service]
		if c == nil {
			c = &cand{service: v.Service, sub: v.Subscription}
			byService[v.Service] = c
		}
		c.vms++
		c.cores += v.Size.Cores
	}
	services := make([]string, 0, len(byService))
	for svc := range byService {
		services = append(services, svc)
	}
	sort.Strings(services)
	for _, svc := range services {
		c := byService[svc]
		profile, ok := store.Get(c.sub)
		if !ok || profile.RegionAgnosticScore < kb.RegionAgnosticThreshold {
			continue
		}
		c.score = profile.RegionAgnosticScore
		if c.cores > best.cores {
			best = *c
		}
	}
	if best.service == "" {
		return Plan{}, fmt.Errorf("balance: no region-agnostic workload found in %s", source)
	}
	return Plan{
		Service:       best.service,
		Subscription:  best.sub,
		Source:        source,
		Destination:   dest,
		VMs:           best.vms,
		Cores:         best.cores,
		AgnosticScore: best.score,
	}, nil
}

// Apply evaluates the shift: it relabels the plan's VMs to the destination
// region (their utilization is region-agnostic, so the series are
// unchanged — exactly the property that makes the shift safe) and computes
// both regions' metrics before and after.
func Apply(t *trace.Trace, plan Plan) Outcome {
	out := Outcome{Plan: plan, Cloud: core.Private}
	moved := make(map[core.VMID]bool)
	for i := range t.VMs {
		v := &t.VMs[i]
		if v.Cloud == core.Private && v.Region == plan.Source && v.Service == plan.Service {
			moved[v.ID] = true
			out.Moved = append(out.Moved, v.ID)
		}
	}
	out.SourceBefore = Metrics(t, core.Private, plan.Source, nil, "")
	out.DestBefore = Metrics(t, core.Private, plan.Destination, nil, "")
	out.SourceAfter = Metrics(t, core.Private, plan.Source, moved, plan.Destination)
	out.DestAfter = Metrics(t, core.Private, plan.Destination, moved, plan.Destination)
	return out
}

// Run performs the full pilot: extract candidates from the knowledge base,
// recommend, and apply.
func Run(t *trace.Trace, store *kb.Store, source, dest string) (Outcome, error) {
	plan, err := Recommend(t, store, source, dest)
	if err != nil {
		return Outcome{}, err
	}
	return Apply(t, plan), nil
}

// HealthImproved reports whether the pilot achieved its goal: the source
// region's underutilized share and utilization rate both decreased while
// the destination's utilization rate moved by less than the source's.
func (o Outcome) HealthImproved() bool {
	srcUnderDown := o.SourceAfter.UnderutilizedShare < o.SourceBefore.UnderutilizedShare
	srcRateDown := o.SourceAfter.UtilizationRate < o.SourceBefore.UtilizationRate
	srcDelta := o.SourceBefore.UtilizationRate - o.SourceAfter.UtilizationRate
	dstDelta := o.DestAfter.UtilizationRate - o.DestBefore.UtilizationRate
	// When both regions have identical physical capacity the deltas are
	// equal up to floating-point rounding; tolerate the tie.
	return srcUnderDown && srcRateDown && dstDelta <= srcDelta+1e-9
}
