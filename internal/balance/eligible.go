package balance

import "cloudlens/internal/kb"

// Eligible reports whether a profile passes the Section IV-B
// cross-region gate for migration: the subscription must already span
// multiple regions and its minimum pairwise cross-region utilization
// correlation must clear kb.RegionAgnosticThreshold — the same gate
// Recommend applies when it builds batch migration plans, shared here so
// the online RegionBalance policy cannot drift from it.
func Eligible(p *kb.Profile) bool {
	return p != nil &&
		len(p.Regions) > 1 &&
		p.RegionAgnosticScore >= kb.RegionAgnosticThreshold
}
