// Package detrand is the determinism lint behind `make lint`: it walks Go
// sources with go/parser (no third-party analysis framework) and rejects
// the two constructs that silently break reproducibility in this
// codebase's deterministic paths.
//
// Rule global-rand (all non-test code): calling math/rand through the
// package-level functions (rand.Intn, rand.Float64, rand.Shuffle, ...)
// draws from the process-global source, whose seed and cross-goroutine
// interleaving are outside any trial's control. Constructing an explicit
// seeded generator — rand.New(rand.NewSource(seed)) — is the allowed form.
//
// Rule wall-clock (deterministic packages only): time.Now in the
// simulation/characterization data path makes output depend on when it
// ran. Observability code (request timing, checkpoint timestamps, metrics)
// legitimately reads the clock, so the rule applies only to the packages
// whose output must be a pure function of (trace, seed, config).
package detrand

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// DeterministicPaths are the package directories (slash-separated path
// suffixes) whose output must be a pure function of their inputs. The
// stream and obs packages are deliberately absent: their fold timers,
// checkpoint timestamps, and HTTP metrics read the wall clock without
// touching folded state.
var DeterministicPaths = []string{
	"internal/sim", "internal/usage", "internal/workload", "internal/trace",
	"internal/kb", "internal/classify", "internal/stats", "internal/sketch",
	"internal/fft", "internal/faultgen", "internal/balance", "internal/diffcheck",
	"internal/analyze", "internal/report", "internal/periodic",
	"internal/provision", "internal/oversub", "internal/spot", "internal/deferral",
	"internal/allocfail", "internal/platform", "internal/policy",
}

// allowedRandCalls are the math/rand package-level functions that build
// explicit generators instead of drawing from the global source.
var allowedRandCalls = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors, should the repo migrate.
	"NewPCG": true, "NewChaCha8": true,
}

// Finding is one lint violation.
type Finding struct {
	Pos     token.Position
	Rule    string // "global-rand" or "wall-clock"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// deterministic reports whether path sits inside a deterministic package.
func deterministic(path string) bool {
	dir := filepath.ToSlash(filepath.Dir(path))
	for _, p := range DeterministicPaths {
		if dir == p || strings.HasSuffix(dir, "/"+p) {
			return true
		}
	}
	return false
}

// CheckSource lints one file. Test files carry no findings: tests may
// freely read clocks and draw unseeded randomness.
func CheckSource(path string, src []byte) ([]Finding, error) {
	if strings.HasSuffix(path, "_test.go") {
		return nil, nil
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}

	// Effective local names of the imports the rules watch.
	randName, timeName := "", ""
	for _, imp := range file.Imports {
		ipath, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch ipath {
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randName = name
		case "time":
			if name == "" {
				name = "time"
			}
			timeName = name
		}
	}
	if randName == "" && timeName == "" {
		return nil, nil
	}
	wallClockScope := deterministic(path)

	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case randName != "" && pkg.Name == randName && !allowedRandCalls[sel.Sel.Name]:
			out = append(out, Finding{
				Pos:  fset.Position(call.Pos()),
				Rule: "global-rand",
				Message: fmt.Sprintf("%s.%s draws from the process-global source; build a seeded generator with %s.New(%s.NewSource(seed))",
					randName, sel.Sel.Name, randName, randName),
			})
		case wallClockScope && timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now":
			out = append(out, Finding{
				Pos:  fset.Position(call.Pos()),
				Rule: "wall-clock",
				Message: fmt.Sprintf("%s.Now in a deterministic package makes output depend on when it ran; thread the timestamp in from the caller",
					timeName),
			})
		}
		return true
	})
	return out, nil
}

// CheckDir lints every non-test Go file under root, skipping testdata,
// vendor, and VCS directories.
func CheckDir(root string) ([]Finding, error) {
	var out []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fs, err := CheckSource(path, src)
		if err != nil {
			return err
		}
		out = append(out, fs...)
		return nil
	})
	return out, err
}
