package detrand

import (
	"strings"
	"testing"
)

func check(t *testing.T, path, src string) []Finding {
	t.Helper()
	fs, err := CheckSource(path, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestGlobalRandForbidden(t *testing.T) {
	src := `package x
import "math/rand"
func f() int { rand.Shuffle(3, func(i, j int) {}); return rand.Intn(10) }
`
	fs := check(t, "internal/kb/x.go", src)
	if len(fs) != 2 {
		t.Fatalf("want 2 global-rand findings, got %v", fs)
	}
	for _, f := range fs {
		if f.Rule != "global-rand" {
			t.Errorf("finding %v: want rule global-rand", f)
		}
	}
	if !strings.Contains(fs[0].String(), "internal/kb/x.go:3") {
		t.Errorf("finding should carry position, got %q", fs[0].String())
	}
}

func TestSeededGeneratorAllowed(t *testing.T) {
	src := `package x
import "math/rand"
func f() int { r := rand.New(rand.NewSource(7)); return r.Intn(10) }
`
	if fs := check(t, "internal/kb/x.go", src); len(fs) != 0 {
		t.Fatalf("seeded generator flagged: %v", fs)
	}
}

func TestRenamedImportStillCaught(t *testing.T) {
	src := `package x
import mrand "math/rand"
func f() float64 { return mrand.Float64() }
`
	fs := check(t, "cmd/tool/x.go", src)
	if len(fs) != 1 || fs[0].Rule != "global-rand" {
		t.Fatalf("renamed import escaped the lint: %v", fs)
	}
}

func TestWallClockOnlyInDeterministicPackages(t *testing.T) {
	src := `package x
import "time"
func f() time.Time { return time.Now() }
`
	if fs := check(t, "internal/workload/x.go", src); len(fs) != 1 || fs[0].Rule != "wall-clock" {
		t.Fatalf("time.Now in a deterministic package must be flagged, got %v", fs)
	}
	// Observability and serving paths read the clock legitimately.
	for _, path := range []string{"internal/obs/x.go", "internal/stream/x.go", "cmd/wkbserver/x.go"} {
		if fs := check(t, path, src); len(fs) != 0 {
			t.Fatalf("%s: wall-clock rule must not apply, got %v", path, fs)
		}
	}
}

func TestTestFilesExempt(t *testing.T) {
	src := `package x
import ("math/rand"; "time")
func f() int { _ = time.Now(); return rand.Intn(10) }
`
	if fs := check(t, "internal/kb/x_test.go", src); len(fs) != 0 {
		t.Fatalf("test file flagged: %v", fs)
	}
}

func TestLocalVariableNamedRandNotConfused(t *testing.T) {
	// No math/rand import at all: selector calls on an unrelated value
	// named rand must pass.
	src := `package x
type gen struct{}
func (gen) Intn(int) int { return 0 }
func f() int { var rand gen; return rand.Intn(10) }
`
	if fs := check(t, "internal/kb/x.go", src); len(fs) != 0 {
		t.Fatalf("unrelated identifier flagged: %v", fs)
	}
}

// TestRepoIsClean runs the lint over the repository itself — the same
// gate `make lint` enforces in CI.
func TestRepoIsClean(t *testing.T) {
	fs, err := CheckDir("../../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
