package usage

import "cloudlens/internal/core"

// The preset constructors build representative, valid parameter sets for
// each pattern kind. The workload generator perturbs these per service/VM;
// tests and examples use them directly.

// Diurnal returns a user-facing daily pattern peaking at peakMinute local
// minutes with the given base and amplitude. The weekend factor of 1/3
// mirrors Figure 5(a), where weekday peaks reach ~60% but weekend peaks only
// ~20%.
func Diurnal(base, amp float64, peakMinute int, seed uint64) Params {
	return Params{
		Pattern:       core.PatternDiurnal,
		Base:          base,
		Amp:           amp,
		PeakMinute:    peakMinute,
		WeekendFactor: 1.0 / 3.0,
		Sharpness:     3,
		NoiseAmp:      0.02,
		Seed:          seed,
	}
}

// Stable returns a flat pattern at the given level with small jitter.
func Stable(level float64, seed uint64) Params {
	return Params{
		Pattern:  core.PatternStable,
		Base:     level,
		NoiseAmp: 0.012,
		Seed:     seed,
	}
}

// Irregular returns a mostly idle pattern with unpredictable half-hour
// spikes above 60%, per Figure 5(b) bottom.
func Irregular(base float64, seed uint64) Params {
	return Params{
		Pattern:         core.PatternIrregular,
		Base:            base,
		NoiseAmp:        0.015,
		SpikeProb:       0.05,
		SpikeLevel:      0.65,
		SpikeBlockSteps: 6, // 30 minutes at the 5-minute grid
		Seed:            seed,
	}
}

// Bursty returns a serverless invocation pattern: clustered bursts reaching
// burstLevel whose per-block probability follows a diurnal envelope peaking
// at peakMinute, with coldStart damping the first block of a burst that
// follows an idle block.
func Bursty(base, burstLevel float64, blockSteps, peakMinute int, coldStart float64, seed uint64) Params {
	return Params{
		Pattern:          core.PatternBursty,
		Base:             base,
		PeakMinute:       peakMinute,
		Sharpness:        2,
		NoiseAmp:         0.01,
		BurstProb:        0.45,
		BurstLevel:       burstLevel,
		BurstBlockSteps:  blockSteps,
		ColdStartPenalty: coldStart,
		Seed:             seed,
	}
}

// Steady returns a serverless invocation pattern with a near-constant call
// rate: a hot function kept warm by continuous traffic.
func Steady(level float64, seed uint64) Params {
	return Params{
		Pattern:  core.PatternSteady,
		Base:     level,
		NoiseAmp: 0.015,
		Seed:     seed,
	}
}

// Spiky returns a serverless invocation pattern that is idle almost always
// with rare, very tall spikes — the cold-start-dominated popularity tail.
func Spiky(spikeLevel float64, blockSteps int, seed uint64) Params {
	return Params{
		Pattern:         core.PatternSpiky,
		Base:            0.01,
		NoiseAmp:        0.008,
		SpikeProb:       0.02,
		SpikeLevel:      spikeLevel,
		SpikeBlockSteps: blockSteps,
		Seed:            seed,
	}
}

// HourlyPeak returns a meeting-join pattern: a working-hours envelope with
// ten-minute peaks at the hour and half-hour marks, per Figure 5(c).
func HourlyPeak(base, amp float64, peakMinute int, seed uint64) Params {
	return Params{
		Pattern:       core.PatternHourlyPeak,
		Base:          base,
		Amp:           amp,
		PeakMinute:    peakMinute,
		WeekendFactor: 0.4,
		Sharpness:     2,
		NoiseAmp:      0.02,
		PeakAmp:       0.35,
		PeakWidthMin:  10,
		HalfHourPeaks: true,
		Seed:          seed,
	}
}
