package usage

import (
	"math"
	"testing"
	"testing/quick"

	"cloudlens/internal/core"
	"cloudlens/internal/sim"
)

var grid = sim.WeekGrid()

func TestPresetsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{name: "diurnal", p: Diurnal(0.1, 0.4, 13*60, 1)},
		{name: "stable", p: Stable(0.2, 2)},
		{name: "irregular", p: Irregular(0.05, 3)},
		{name: "hourly-peak", p: HourlyPeak(0.05, 0.3, 13*60, 4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{name: "zero value", p: Params{}},
		{name: "negative base", p: Params{Pattern: core.PatternStable, Base: -0.1}},
		{name: "base above one", p: Params{Pattern: core.PatternStable, Base: 1.2}},
		{name: "excess amplitude", p: Params{Pattern: core.PatternDiurnal, Base: 0.9, Amp: 1}},
		{name: "irregular without block", p: Params{Pattern: core.PatternIrregular, Base: 0.1}},
		{name: "hourly without width", p: Params{Pattern: core.PatternHourlyPeak, Base: 0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

// TestAtBoundedProperty: every model's output stays in [0, 1] at every step.
func TestAtBoundedProperty(t *testing.T) {
	presets := []Params{
		Diurnal(0.1, 0.45, 13*60, 11),
		Stable(0.3, 12),
		Irregular(0.06, 13),
		HourlyPeak(0.06, 0.3, 13*60, 14),
	}
	check := func(rawStep uint16, which uint8) bool {
		p := presets[int(which)%len(presets)]
		step := int(rawStep) % grid.N
		v := p.At(grid, step)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAtDeterministic(t *testing.T) {
	p := Diurnal(0.1, 0.4, 13*60, 99)
	for step := 0; step < 500; step++ {
		if p.At(grid, step) != p.At(grid, step) {
			t.Fatal("At is not deterministic")
		}
	}
}

func TestDiurnalPeaksAtPeakMinute(t *testing.T) {
	p := Diurnal(0.1, 0.4, 13*60, 5)
	p.NoiseAmp = 0 // isolate the deterministic shape
	// Tuesday (weekday).
	day := sim.StepsPerDay
	peakStep := day + (13*60)/5
	nightStep := day + (1*60)/5
	peak := p.At(grid, peakStep)
	night := p.At(grid, nightStep)
	if peak <= night+0.2 {
		t.Fatalf("peak %v not clearly above night %v", peak, night)
	}
	if math.Abs(peak-(0.1+0.4)) > 0.02 {
		t.Fatalf("peak %v, want ~0.5", peak)
	}
}

func TestDiurnalWeekendDamping(t *testing.T) {
	p := Diurnal(0.1, 0.45, 13*60, 6)
	p.NoiseAmp = 0
	weekdayPeak := p.At(grid, 1*sim.StepsPerDay+13*12) // Tuesday 13:00
	weekendPeak := p.At(grid, 5*sim.StepsPerDay+13*12) // Saturday 13:00
	// WeekendFactor is 1/3: Figure 5(a)'s ~60% weekday vs ~20% weekend.
	wantRatio := (weekendPeak - 0.1) / (weekdayPeak - 0.1)
	if math.Abs(wantRatio-1.0/3.0) > 0.05 {
		t.Fatalf("weekend/weekday amplitude ratio %v, want ~1/3", wantRatio)
	}
}

func TestDiurnalTimeZoneAnchoring(t *testing.T) {
	base := Diurnal(0.1, 0.4, 13*60, 7)
	base.NoiseAmp = 0

	local := base
	local.TZOffsetMin = -480 // UTC-8
	// The local 13:00 peak occurs at 21:00 UTC.
	utcStep := 1*sim.StepsPerDay + 21*12
	if v := local.At(grid, utcStep); math.Abs(v-0.5) > 0.02 {
		t.Fatalf("local-anchored peak at 21:00 UTC = %v, want ~0.5", v)
	}

	anchored := base
	anchored.TZOffsetMin = -480
	anchored.UTCAnchored = true
	// UTC-anchored ignores the offset: peak at 13:00 UTC.
	if v := anchored.At(grid, 1*sim.StepsPerDay+13*12); math.Abs(v-0.5) > 0.02 {
		t.Fatalf("UTC-anchored peak at 13:00 UTC = %v, want ~0.5", v)
	}
}

func TestStableIsFlat(t *testing.T) {
	p := Stable(0.25, 8)
	series := p.Series(grid, 0, grid.N)
	var minV, maxV = 1.0, 0.0
	for _, v := range series {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV-minV > 3*p.NoiseAmp {
		t.Fatalf("stable series range %v too wide", maxV-minV)
	}
}

func TestIrregularSpikes(t *testing.T) {
	p := Irregular(0.05, 9)
	series := p.Series(grid, 0, grid.N)
	spikes := 0
	for _, v := range series {
		if v > 0.4 {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatal("irregular pattern produced no spikes")
	}
	frac := float64(spikes) / float64(len(series))
	if frac > 0.2 {
		t.Fatalf("irregular pattern spikes %.0f%% of the time; should be occasional", 100*frac)
	}
	// Spikes persist for whole blocks.
	if p.SpikeBlockSteps < 2 {
		t.Skip("single-step blocks")
	}
}

func TestHourlyPeakAlignment(t *testing.T) {
	p := HourlyPeak(0.05, 0.3, 13*60, 10)
	p.NoiseAmp = 0
	// Tuesday 13:02 (within the on-the-hour peak) vs 13:17 (outside).
	inPeak := p.At(grid, sim.StepsPerDay+13*12)
	offPeak := p.At(grid, sim.StepsPerDay+13*12+3)
	if inPeak <= offPeak+0.1 {
		t.Fatalf("hourly peak %v not above envelope %v", inPeak, offPeak)
	}
	// Half-hour peak present when enabled.
	halfPeak := p.At(grid, sim.StepsPerDay+13*12+6)
	if halfPeak <= offPeak+0.1 {
		t.Fatalf("half-hour peak %v not above envelope %v", halfPeak, offPeak)
	}
}

func TestSeriesMatchesAt(t *testing.T) {
	p := Diurnal(0.1, 0.3, 12*60, 21)
	series := p.Series(grid, 100, 200)
	if len(series) != 100 {
		t.Fatalf("series length %d, want 100", len(series))
	}
	for i, v := range series {
		if v != p.At(grid, 100+i) {
			t.Fatalf("series[%d] diverges from At", i)
		}
	}
}

func TestSeriesClipsRange(t *testing.T) {
	p := Stable(0.2, 22)
	if got := p.Series(grid, -50, 10); len(got) != 10 {
		t.Fatalf("negative from not clipped: %d", len(got))
	}
	if got := p.Series(grid, grid.N-5, grid.N+100); len(got) != 5 {
		t.Fatalf("overlong to not clipped: %d", len(got))
	}
	if got := p.Series(grid, 50, 50); got != nil {
		t.Fatalf("empty range produced %d samples", len(got))
	}
}

func TestMeanOver(t *testing.T) {
	p := Stable(0.3, 23)
	p.NoiseAmp = 0
	if got := p.MeanOver(grid, 0, 100); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MeanOver = %v, want 0.3", got)
	}
	if got := p.MeanOver(grid, 10, 10); got != 0 {
		t.Fatalf("empty MeanOver = %v, want 0", got)
	}
}

func TestSeedsDecorrelateNoise(t *testing.T) {
	a := Stable(0.3, 1001)
	b := Stable(0.3, 1002)
	same := 0
	for step := 0; step < 1000; step++ {
		if a.At(grid, step) == b.At(grid, step) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds agree on %d of 1000 samples", same)
	}
}
