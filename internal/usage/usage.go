// Package usage models per-VM CPU utilization as lazily evaluated,
// deterministic functions of time. The four model kinds mirror the paper's
// Section IV-A taxonomy:
//
//   - diurnal: a daily bell peaking during working hours, damped on
//     weekends (Figure 5a shows ~60% weekday peaks vs ~20% weekend peaks);
//   - stable: a flat level with small jitter, the over-subscription
//     candidate of Figure 5b (top);
//   - irregular: mostly idle (<10%) with abrupt spikes above 60% and no
//     periodic structure, Figure 5b (bottom);
//   - hourly-peak: sharp peaks at the hour/half-hour marks riding on a
//     daytime envelope (scheduled-meeting joins), Figure 5c.
//
// The serverless invocation family adds three invocation-rate kinds (values
// are invocation counts normalized to the function's provisioned peak):
//
//   - bursty: clustered bursts of calls whose per-block probability follows
//     a diurnal envelope, with a cold-start penalty damping the first block
//     of a burst that follows an idle block;
//   - steady: a near-constant call rate (hot, always-warm functions);
//   - spiky: idle almost always with rare, very tall spikes (the cold
//     tail of the function popularity distribution).
//
// A model's value at a step is a pure function of its Params (including a
// noise seed), so traces store parameters instead of 2016-sample arrays and
// materialize series on demand.
package usage

import (
	"fmt"
	"math"

	"cloudlens/internal/core"
	"cloudlens/internal/sim"
)

// Params fully describes a utilization model. The zero value is not valid;
// construct instances via the workload generator or the helper constructors
// in this package.
type Params struct {
	// Pattern selects the model kind.
	Pattern core.Pattern `json:"pattern"`
	// Base is the idle/baseline utilization fraction in [0, 1].
	Base float64 `json:"base"`
	// Amp is the diurnal amplitude above Base (diurnal and hourly-peak
	// envelopes).
	Amp float64 `json:"amp,omitempty"`
	// PeakMinute is the minute-of-day of the diurnal peak in the model's
	// anchor time zone.
	PeakMinute int `json:"peakMinute,omitempty"`
	// TZOffsetMin is the deployment region's offset from UTC in minutes;
	// it anchors the daily cycle unless UTCAnchored is set.
	TZOffsetMin int `json:"tzOffsetMin,omitempty"`
	// UTCAnchored pins the daily cycle to UTC regardless of region. This
	// is the geo-load-balancer effect behind the paper's region-agnostic
	// workloads (Figure 7c): utilization peaks align across time zones.
	UTCAnchored bool `json:"utcAnchored,omitempty"`
	// WeekendFactor scales the amplitude on Saturdays and Sundays;
	// 1 means no weekend effect.
	WeekendFactor float64 `json:"weekendFactor,omitempty"`
	// Sharpness shapes the diurnal bell; higher values concentrate the
	// peak into fewer hours. Values around 2-4 resemble the paper's
	// working-hours curves.
	Sharpness float64 `json:"sharpness,omitempty"`
	// NoiseAmp is the half-width of the uniform per-sample jitter.
	NoiseAmp float64 `json:"noiseAmp,omitempty"`
	// Seed makes the jitter (and irregular spikes) reproducible.
	Seed uint64 `json:"seed"`
	// SpikeProb is the per-block probability of an irregular spike.
	SpikeProb float64 `json:"spikeProb,omitempty"`
	// SpikeLevel is the utilization an irregular spike reaches.
	SpikeLevel float64 `json:"spikeLevel,omitempty"`
	// SpikeBlockSteps is the spike duration in samples.
	SpikeBlockSteps int `json:"spikeBlockSteps,omitempty"`
	// PeakAmp is the height of hourly peaks above the envelope.
	PeakAmp float64 `json:"peakAmp,omitempty"`
	// PeakWidthMin is the hourly peak duration in minutes.
	PeakWidthMin int `json:"peakWidthMin,omitempty"`
	// HalfHourPeaks adds peaks at the half-hour marks as well.
	HalfHourPeaks bool `json:"halfHourPeaks,omitempty"`
	// BurstProb is the bursty model's per-block burst probability at the
	// top of its diurnal envelope.
	BurstProb float64 `json:"burstProb,omitempty"`
	// BurstLevel is the normalized invocation rate a burst reaches.
	BurstLevel float64 `json:"burstLevel,omitempty"`
	// BurstBlockSteps is the burst duration in samples.
	BurstBlockSteps int `json:"burstBlockSteps,omitempty"`
	// ColdStartPenalty in [0, 1] damps the first block of a burst that
	// follows an idle block: cold-start latency eats into the invocations
	// completed in that interval. 0 disables the effect.
	ColdStartPenalty float64 `json:"coldStartPenalty,omitempty"`
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch p.Pattern {
	case core.PatternDiurnal, core.PatternStable, core.PatternIrregular,
		core.PatternHourlyPeak, core.PatternBursty, core.PatternSteady,
		core.PatternSpiky:
	default:
		return fmt.Errorf("usage: invalid pattern %v", p.Pattern)
	}
	if p.Base < 0 || p.Base > 1 {
		return fmt.Errorf("usage: base %v out of [0,1]", p.Base)
	}
	if p.Amp < 0 || p.Base+p.Amp > 1.5 {
		return fmt.Errorf("usage: amplitude %v out of range", p.Amp)
	}
	if (p.Pattern == core.PatternIrregular || p.Pattern == core.PatternSpiky) && p.SpikeBlockSteps <= 0 {
		return fmt.Errorf("usage: %v model needs SpikeBlockSteps > 0", p.Pattern)
	}
	if p.Pattern == core.PatternHourlyPeak && p.PeakWidthMin <= 0 {
		return fmt.Errorf("usage: hourly-peak model needs PeakWidthMin > 0")
	}
	if p.Pattern == core.PatternBursty {
		if p.BurstBlockSteps <= 0 {
			return fmt.Errorf("usage: bursty model needs BurstBlockSteps > 0")
		}
		if !(p.BurstProb >= 0 && p.BurstProb <= 1) {
			return fmt.Errorf("usage: burst probability %v out of [0,1]", p.BurstProb)
		}
		if !(p.BurstLevel >= 0 && p.BurstLevel <= 1) {
			return fmt.Errorf("usage: burst level %v out of [0,1]", p.BurstLevel)
		}
	}
	if !(p.ColdStartPenalty >= 0 && p.ColdStartPenalty <= 1) {
		return fmt.Errorf("usage: cold-start penalty %v out of [0,1]", p.ColdStartPenalty)
	}
	return nil
}

// anchorOffset returns the minutes offset that anchors the daily cycle.
func (p Params) anchorOffset() int {
	if p.UTCAnchored {
		return 0
	}
	return p.TZOffsetMin
}

// At returns the CPU utilization fraction in [0, 1] at sample step of grid g.
func (p Params) At(g sim.Grid, step int) float64 {
	var v float64
	switch p.Pattern {
	case core.PatternDiurnal:
		v = p.Base + p.diurnalComponent(g, step)
	case core.PatternStable:
		v = p.Base
	case core.PatternIrregular:
		v = p.Base + p.spikeComponent(step)
	case core.PatternHourlyPeak:
		v = p.Base + p.hourlyPeakComponent(g, step)
	case core.PatternBursty:
		v = p.Base + p.burstComponent(g, step)
	case core.PatternSteady:
		v = p.Base
	case core.PatternSpiky:
		v = p.Base + p.spikeComponent(step)
	default:
		v = p.Base
	}
	v += p.NoiseAmp * sim.NoiseSigned(p.Seed, step)
	return clamp01(v)
}

// diurnalComponent is the daily bell including the weekend damping.
func (p Params) diurnalComponent(g sim.Grid, step int) float64 {
	off := p.anchorOffset()
	m := g.MinuteOfDay(step, off)
	phase := 2 * math.Pi * float64(m-p.PeakMinute) / (24 * 60)
	bell := 0.5 * (1 + math.Cos(phase))
	sharp := p.Sharpness
	if sharp <= 0 {
		sharp = 1
	}
	bell = math.Pow(bell, sharp)
	amp := p.Amp
	if g.IsWeekend(step, off) {
		wf := p.WeekendFactor
		if wf == 0 {
			wf = 1
		}
		amp *= wf
	}
	return amp * bell
}

// spikeComponent produces block-aligned irregular spikes: the decision to
// spike is drawn once per block so spikes persist for SpikeBlockSteps
// samples, matching the "raises above 60% for a short time with no apparent
// sign" description.
func (p Params) spikeComponent(step int) float64 {
	if p.SpikeBlockSteps <= 0 || p.SpikeProb <= 0 {
		return 0
	}
	block := step / p.SpikeBlockSteps
	draw := sim.Noise01(p.Seed^0xa5a5a5a5a5a5a5a5, block)
	if draw >= p.SpikeProb {
		return 0
	}
	// Spike height varies per block so repeated spikes differ.
	height := 0.7 + 0.3*sim.Noise01(p.Seed^0x5a5a5a5a5a5a5a5a, block)
	return p.SpikeLevel * height
}

// hourlyPeakComponent produces the meeting-join peaks: a daytime diurnal
// envelope plus tall spikes in the first PeakWidthMin minutes of each hour
// (and optionally half-hour).
func (p Params) hourlyPeakComponent(g sim.Grid, step int) float64 {
	env := p.diurnalComponent(g, step)
	m := g.MinuteOfDay(step, p.anchorOffset())
	minuteOfHour := m % 60
	inPeak := minuteOfHour < p.PeakWidthMin
	if p.HalfHourPeaks && minuteOfHour >= 30 && minuteOfHour < 30+p.PeakWidthMin {
		inPeak = true
	}
	if !inPeak {
		return env
	}
	// The peak height follows the envelope so hourly peaks are tall
	// during working hours and muted at night, as in Figure 5(c)/7(c).
	scale := 0.2
	if p.Amp > 0 {
		scale = env / p.Amp
	}
	return env + p.PeakAmp*scale
}

// Salt constants separating the bursty model's independent noise streams.
const (
	burstDrawSalt   = 0x3c3c3c3c3c3c3c3c
	burstHeightSalt = 0xc3c3c3c3c3c3c3c3
)

// burstComponent produces the serverless burst component: block-aligned
// bursts whose probability follows the diurnal envelope, damped by the
// cold-start penalty when the previous block was idle. Like every model it
// is a pure function of (Params, grid, step) — whether block b-1 burst is
// recomputed, never stored.
func (p Params) burstComponent(g sim.Grid, step int) float64 {
	if p.BurstBlockSteps <= 0 || p.BurstProb <= 0 {
		return 0
	}
	b := step / p.BurstBlockSteps
	if !p.burstsAt(g, b) {
		return 0
	}
	// Burst height varies per block so repeated bursts differ.
	h := p.BurstLevel * (0.6 + 0.4*sim.Noise01(p.Seed^burstHeightSalt, b))
	if p.ColdStartPenalty > 0 && (b == 0 || !p.burstsAt(g, b-1)) {
		h *= 1 - p.ColdStartPenalty
	}
	return h
}

// burstsAt decides whether block b bursts: one seeded draw per block,
// accepted with a probability that follows the diurnal envelope at the
// block's first sample (bursts cluster in the function's busy hours but
// never fully stop off-peak).
func (p Params) burstsAt(g sim.Grid, b int) bool {
	env := p.burstEnvelope(g, b*p.BurstBlockSteps)
	draw := sim.Noise01(p.Seed^burstDrawSalt, b)
	return draw < p.BurstProb*(0.25+0.75*env)
}

// burstEnvelope is the normalized [0, 1] diurnal bell the burst
// probability rides on.
func (p Params) burstEnvelope(g sim.Grid, step int) float64 {
	m := g.MinuteOfDay(step, p.anchorOffset())
	phase := 2 * math.Pi * float64(m-p.PeakMinute) / (24 * 60)
	bell := 0.5 * (1 + math.Cos(phase))
	sharp := p.Sharpness
	if sharp <= 0 {
		sharp = 1
	}
	return math.Pow(bell, sharp)
}

// Series materializes the utilization fractions for steps [from, to).
func (p Params) Series(g sim.Grid, from, to int) []float64 {
	return p.SeriesInto(nil, g, from, to)
}

// SeriesInto materializes the utilization fractions for steps [from, to)
// into buf, reallocating only when buf is too small. Hot paths that
// materialize many series transiently (classification sweeps, correlation
// studies) pass a per-worker scratch buffer to keep allocations flat.
func (p Params) SeriesInto(buf []float64, g sim.Grid, from, to int) []float64 {
	if to > g.N {
		to = g.N
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return nil
	}
	n := to - from
	var out []float64
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]float64, n)
	}
	for i := range out {
		out[i] = p.At(g, from+i)
	}
	return out
}

// MeanOver returns the average utilization fraction over steps [from, to).
func (p Params) MeanOver(g sim.Grid, from, to int) float64 {
	if to > g.N {
		to = g.N
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return 0
	}
	sum := 0.0
	for i := from; i < to; i++ {
		sum += p.At(g, i)
	}
	return sum / float64(to-from)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
