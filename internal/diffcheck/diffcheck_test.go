package diffcheck

import (
	"strings"
	"testing"

	"cloudlens/internal/core"
	"cloudlens/internal/kb"
	"cloudlens/internal/stream"
)

// TestGauntletMatrix runs a compact slice of the default matrix — every
// default fault spec once, all three gap policies, and three mid-replay
// kill/resume trials — and requires zero divergences. The full 25-trial
// run is wired to `make diffcheck`; this keeps the oracle under the
// regular test tier.
func TestGauntletMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial differential run")
	}
	rep, err := Run(Config{Trials: 6, Seed: 20260806, Scales: []float64{0.05}, FamilyTrials: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("batch and stream diverged:\n%s", rep)
	}
	kills := 0
	for _, res := range rep.Results {
		if res.Trial.KillStep >= 0 {
			kills++
		}
	}
	if kills != 3 {
		t.Fatalf("matrix ran %d kill/resume trials, want 3", kills)
	}
}

// TestGauntletShardInvariance runs the matrix with shard counts cycled
// across trials: lossless sharded runs must match the single-ingestor
// reference bit for bit (the kill trials resume the sharded engine), and
// lossy runs must reconcile their fault ledgers exactly.
func TestGauntletShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial differential run")
	}
	rep, err := Run(Config{Trials: 6, Seed: 20260807, Scales: []float64{0.05}, ShardCounts: []int{2, 4, 8}, FamilyTrials: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("sharded stream diverged:\n%s", rep)
	}
	for _, res := range rep.Results {
		if res.Trial.Shards < 2 {
			t.Fatalf("trial %d ran unsharded (%d)", res.Trial.Index, res.Trial.Shards)
		}
	}
}

// TestGauntletServerlessFamily runs a compact family-only slice: serverless
// one-minute-grid trials through the default fault specs, gap policies, and
// mid-replay kill/resume. Lossless trials must hit exactly 100%
// dominant-class agreement — the family oracle — because both sides build
// the classification evidence with the same sketch.
func TestGauntletServerlessFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial differential run")
	}
	rep, err := Run(Config{Trials: -1, Seed: 20260808, FamilyTrials: 6, FamilyScales: []float64{0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("serverless batch and stream diverged:\n%s", rep)
	}
	for _, res := range rep.Results {
		if res.Trial.Family != core.FamilyServerless {
			t.Fatalf("trial %d ran the %s family, want serverless", res.Trial.Index, res.Trial.Family)
		}
		if res.Subscriptions == 0 {
			t.Fatalf("trial %d extracted no subscriptions", res.Trial.Index)
		}
	}
}

// TestComparatorDetectsMutation proves the oracle is alive: hand-corrupt
// one field of the streaming knowledge base and the comparator must name
// that exact subscription and field.
func TestComparatorDetectsMutation(t *testing.T) {
	tl := Trial{Index: 0, Seed: 7, Scale: 0.05, GapPolicy: stream.GapCarry, Faults: "off", KillStep: -1}
	res, err := runTrial(tl, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("clean trial diverged: %v", res.Divergences)
	}

	// Re-run the streaming side, then corrupt one profile in place.
	cfg := Config{}.withDefaults()
	tr, batch, run, err := materializeTrial(tl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var victim core.SubscriptionID
	for _, p := range batch.List(kb.Query{MinRegionAgnosticScore: -2}) {
		if p.VMsObserved > 0 {
			victim = p.Subscription
			break
		}
	}
	lp, ok := run.eng.KB().Get(victim)
	if !ok {
		t.Fatalf("subscription %s missing from live knowledge base", victim)
	}
	mutated := *lp
	mutated.MedianLifetimeMin += 17
	run.eng.KB().Put(&mutated)

	got := compareTrial(tl, tr, batch, run, cfg.MaxDivergencesPerTrial)
	if len(got.Divergences) == 0 {
		t.Fatal("comparator missed an injected field mutation")
	}
	d := got.Divergences[0]
	if d.Subscription != victim || d.Field != "medianLifetimeMin" {
		t.Fatalf("divergence names %s/%s, want %s/medianLifetimeMin", d.Subscription, d.Field, victim)
	}
	if !strings.Contains(d.String(), string(victim)) {
		t.Fatalf("divergence string %q does not name the subscription", d)
	}
}

// TestReportString checks the report renders one verdict line per trial
// and surfaces the first divergence for replay.
func TestReportString(t *testing.T) {
	rep := &Report{Results: []TrialResult{
		{Trial: Trial{Index: 0, Seed: 1, Scale: 0.05, GapPolicy: stream.GapCarry, Faults: "off", KillStep: -1}, PatternAgreement: 1, PeakHourAgreement: 1},
		{Trial: Trial{Index: 1, Seed: 2, Scale: 0.1, GapPolicy: stream.GapSkip, Faults: "drop=0.01", KillStep: 44},
			PatternAgreement: 1, PeakHourAgreement: 1,
			Divergences: []Divergence{{Field: "vmsObserved", Batch: "3", Stream: "4"}}},
	}}
	if !rep.Failed() {
		t.Fatal("report with a divergence must fail")
	}
	s := rep.String()
	for _, want := range []string{"2 trials, 1 divergences", "trial 0", "DIVERGED (1)", "kill=step 44", "first divergence:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
