package diffcheck

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"

	"cloudlens/internal/core"
	"cloudlens/internal/kb"
	"cloudlens/internal/stats"
	"cloudlens/internal/stream"
	"cloudlens/internal/trace"
)

// Comparison tolerances. Structural fields (rosters, counts, lifetimes)
// are compared exactly; only the statistical fields carry bands, tighter
// when the fault mix is lossless. The agreement thresholds mirror the
// golden batch-equivalence test.
const (
	// minPatternAgreement is the minimum fraction of batch-classified
	// subscriptions whose live dominant pattern matches.
	minPatternAgreement = 0.95
	// minPeakAgreement bounds peak-hour disagreement on lossless trials
	// only: under data loss, gap repair legitimately perturbs the hourly
	// means of flat subscriptions enough to flip near-tie argmaxes.
	minPeakAgreement = 0.90

	meanUtilTolLossless = 0.01
	meanUtilTolLossy    = 0.05
	quantileTolLossless = 0.01
	quantileTolLossy    = 0.03
	// quantileRankTol is the alternative acceptance for sketch quantiles:
	// a histogram sketch is rank-accurate, so in a density gap (e.g. a
	// bimodal subscription whose median falls between its two modes) the
	// estimated value can sit far from the exact order statistic while
	// still splitting the population at the right fraction. An estimate
	// passes if it is close in value OR close in rank.
	quantileRankTol = 0.02
	rasTolLossless  = 0.02
	rasTolLossy     = 0.15
)

// quantileOK accepts a sketch estimate that is close to the exact order
// statistic in value, or splits the sorted population within
// quantileRankTol of the target rank.
func quantileOK(sorted []float64, target, exact, est, valueTol float64) bool {
	if math.Abs(est-exact) <= valueTol {
		return true
	}
	rank := float64(sort.SearchFloat64s(sorted, est)) / float64(len(sorted))
	return math.Abs(rank-target) <= quantileRankTol
}

// Divergence is one confirmed disagreement between the batch and
// streaming knowledge bases, tagged with the trial recipe that replays it.
type Divergence struct {
	Trial        Trial               `json:"trial"`
	Subscription core.SubscriptionID `json:"subscription,omitempty"`
	Field        string              `json:"field"`
	Batch        string              `json:"batch"`
	Stream       string              `json:"stream"`
}

func (d Divergence) String() string {
	where := "cloud-level"
	if d.Subscription != "" {
		where = "subscription " + string(d.Subscription)
	}
	return fmt.Sprintf("%s: %s field %s: batch %s, stream %s", d.Trial, where, d.Field, d.Batch, d.Stream)
}

// TrialResult is one trial's comparison outcome.
type TrialResult struct {
	Trial         Trial `json:"trial"`
	Subscriptions int   `json:"subscriptions"`
	// PatternAgreement is the dominant-pattern match fraction over
	// batch-classified subscriptions (1 when none were classified).
	PatternAgreement float64 `json:"patternAgreement"`
	// PeakHourAgreement is the peak-hour match fraction (lossless trials).
	PeakHourAgreement float64 `json:"peakHourAgreement"`
	// Deficit is the number of VM observations the stream lost to
	// injected drops/corruption (always 0 on lossless trials).
	Deficit     int64        `json:"deficit"`
	Divergences []Divergence `json:"divergences,omitempty"`
	// Truncated marks that the per-trial divergence cap was hit.
	Truncated bool `json:"truncated,omitempty"`
}

// Report is the gauntlet's full outcome.
type Report struct {
	Config  Config        `json:"config"`
	Results []TrialResult `json:"results"`
}

// Divergences flattens every trial's divergences, in trial order.
func (r *Report) Divergences() []Divergence {
	var out []Divergence
	for _, tr := range r.Results {
		out = append(out, tr.Divergences...)
	}
	return out
}

// Failed reports whether any trial diverged.
func (r *Report) Failed() bool { return len(r.Divergences()) > 0 }

// String renders the human-readable report: one line per trial, then the
// first divergence in full (the debugging entry point) and a count of the
// rest.
func (r *Report) String() string {
	var b strings.Builder
	divs := r.Divergences()
	fmt.Fprintf(&b, "diffcheck: %d trials, %d divergences\n", len(r.Results), len(divs))
	for _, tr := range r.Results {
		verdict := "ok"
		if len(tr.Divergences) > 0 {
			verdict = fmt.Sprintf("DIVERGED (%d)", len(tr.Divergences))
			if tr.Truncated {
				verdict += "+"
			}
		}
		fmt.Fprintf(&b, "  %s: %s subs=%d pattern=%.3f peak=%.3f deficit=%d\n",
			tr.Trial, verdict, tr.Subscriptions, tr.PatternAgreement, tr.PeakHourAgreement, tr.Deficit)
	}
	if len(divs) > 0 {
		fmt.Fprintf(&b, "first divergence: %s\n", divs[0])
	}
	return b.String()
}

// diffState accumulates divergences for one trial under the report cap.
type diffState struct {
	res *TrialResult
	max int
}

func (d *diffState) add(sub core.SubscriptionID, field, batch, stream string) {
	if len(d.res.Divergences) >= d.max {
		d.res.Truncated = true
		return
	}
	d.res.Divergences = append(d.res.Divergences, Divergence{
		Trial: d.res.Trial, Subscription: sub, Field: field, Batch: batch, Stream: stream,
	})
}

func (d *diffState) addf(sub core.SubscriptionID, field string, batch, stream float64) {
	d.add(sub, field, fmt.Sprintf("%.6g", batch), fmt.Sprintf("%.6g", stream))
}

// exactPools holds the exact utilization-sample populations both quantile
// comparisons are held against: every sample of every day-plus VM, pooled
// per subscription and per cloud (the same qualification rule — at least
// kb.MinProfileSteps of history — that both implementations apply).
type exactPools struct {
	perSub   map[core.SubscriptionID][]float64
	perCloud map[core.Cloud][]float64
	// dayPlus counts the day-plus VMs per subscription — the population
	// that feeds classification, quantiles, and region-agnosticism. Under
	// drops with GapSkip a borderline VM can fall short of the
	// qualification threshold in *observed* samples and leave the stream's
	// pool entirely, so statistical fields are only comparable when the
	// stream's qualified count matches this one.
	dayPlus map[core.SubscriptionID]int
}

func poolExact(tr *trace.Trace) *exactPools {
	p := &exactPools{
		perSub:   make(map[core.SubscriptionID][]float64),
		perCloud: make(map[core.Cloud][]float64),
		dayPlus:  make(map[core.SubscriptionID]int),
	}
	minSteps := kb.MinProfileStepsFor(tr.Grid)
	var buf []float64
	for i := range tr.VMs {
		v := &tr.VMs[i]
		from, to, ok := v.AliveRange(tr.Grid.N)
		if !ok || to-from < minSteps {
			continue
		}
		p.dayPlus[v.Subscription]++
		buf = v.Usage.SeriesInto(buf, tr.Grid, from, to)
		p.perSub[v.Subscription] = append(p.perSub[v.Subscription], buf...)
		p.perCloud[v.Cloud] = append(p.perCloud[v.Cloud], buf...)
	}
	return p
}

// compareTrial diffs the two knowledge bases field by field and returns
// the trial's result. Batch profiles are walked in subscription order, so
// the first reported divergence is deterministic.
func compareTrial(tl Trial, tr *trace.Trace, batch *kb.Store, run *streamRun, maxDiv int) TrialResult {
	res := TrialResult{Trial: tl, PatternAgreement: 1, PeakHourAgreement: 1}
	d := &diffState{res: &res, max: maxDiv}

	all := kb.Query{MinRegionAgnosticScore: -2}
	bps := batch.List(all)
	res.Subscriptions = len(bps)
	live := run.eng.KB()

	// The stream must never invent a subscription the trace does not have.
	for _, lp := range live.List(all) {
		if _, ok := batch.Get(lp.Subscription); !ok {
			d.add(lp.Subscription, "presence", "absent", fmt.Sprintf("present (%d VMs)", lp.VMsObserved))
		}
	}

	pools := poolExact(tr)
	var patternTotal, patternAgree, peakTotal, peakAgree int

	for _, bp := range bps {
		lp, ok := live.Get(bp.Subscription)
		if !ok {
			if run.lossless || len(bp.PatternShares) > 0 {
				// A lossless stream sees every VM; and even under drops a
				// subscription with a day-plus VM has hundreds of samples,
				// so its complete disappearance is a bug, not loss.
				d.add(bp.Subscription, "presence", fmt.Sprintf("present (%d VMs)", bp.VMsObserved), "absent")
			}
			res.Deficit += int64(bp.VMsObserved)
			continue
		}

		// Roster layer. Loss can shrink the observed roster but never grow
		// it; when the roster survives intact, every roster-derived field
		// must be bit-identical regardless of the fault mix.
		rosterComplete := lp.VMsObserved == bp.VMsObserved
		if lp.VMsObserved > bp.VMsObserved {
			d.addf(bp.Subscription, "vmsObserved", float64(bp.VMsObserved), float64(lp.VMsObserved))
		} else if !rosterComplete {
			if run.lossless {
				d.addf(bp.Subscription, "vmsObserved", float64(bp.VMsObserved), float64(lp.VMsObserved))
			}
			res.Deficit += int64(bp.VMsObserved - lp.VMsObserved)
		}
		if run.lossless || rosterComplete {
			if lp.Cloud != bp.Cloud {
				d.add(bp.Subscription, "cloud", bp.Cloud.String(), lp.Cloud.String())
			}
			if lp.Family != bp.Family {
				d.add(bp.Subscription, "family", bp.Family.String(), lp.Family.String())
			}
			if got, want := strings.Join(lp.Regions, ","), strings.Join(bp.Regions, ","); got != want {
				d.add(bp.Subscription, "regions", want, got)
			}
			if got, want := strings.Join(lp.Services, ","), strings.Join(bp.Services, ","); got != want {
				d.add(bp.Subscription, "services", want, got)
			}
			if lp.MedianLifetimeMin != bp.MedianLifetimeMin {
				d.addf(bp.Subscription, "medianLifetimeMin", bp.MedianLifetimeMin, lp.MedianLifetimeMin)
			}
			if lp.ShortLivedShare != bp.ShortLivedShare {
				d.addf(bp.Subscription, "shortLivedShare", bp.ShortLivedShare, lp.ShortLivedShare)
			}
		}
		// The snapshot census comes from the snapshot step's samples, so a
		// dropped reading can (legitimately) lose a census entry even when
		// the roster survived; the census can still never overcount.
		if run.lossless {
			if lp.SnapshotVMs != bp.SnapshotVMs {
				d.addf(bp.Subscription, "snapshotVMs", float64(bp.SnapshotVMs), float64(lp.SnapshotVMs))
			}
			if lp.SnapshotCores != bp.SnapshotCores {
				d.addf(bp.Subscription, "snapshotCores", float64(bp.SnapshotCores), float64(lp.SnapshotCores))
			}
		} else if lp.SnapshotVMs > bp.SnapshotVMs {
			d.addf(bp.Subscription, "snapshotVMs", float64(bp.SnapshotVMs), float64(lp.SnapshotVMs))
		}

		// Statistical layer. The fields below are aggregates over the
		// subscription's day-plus VMs, so they are only comparable when the
		// stream's qualified pool matches the batch one — under drops a
		// borderline VM can miss the observed-sample threshold and take its
		// whole series out of the stream's aggregates.
		prof, _ := run.eng.Profile(bp.Subscription)
		poolComplete := run.lossless || prof.QualifiedVMs == pools.dayPlus[bp.Subscription]
		meanTol, qTol, rasTol := meanUtilTolLossy, quantileTolLossy, rasTolLossy
		if run.lossless {
			meanTol, qTol, rasTol = meanUtilTolLossless, quantileTolLossless, rasTolLossless
		}
		if bp.DominantPattern != core.PatternUnknown && poolComplete {
			patternTotal++
			if lp.DominantPattern == bp.DominantPattern {
				patternAgree++
			}
		}
		if run.lossless && bp.PeakHourUTC >= 0 {
			peakTotal++
			if lp.PeakHourUTC == bp.PeakHourUTC {
				peakAgree++
			}
		}
		bothClassified := len(bp.PatternShares) > 0 && len(lp.PatternShares) > 0
		if bothClassified && poolComplete {
			if diff := math.Abs(lp.MeanUtilization - bp.MeanUtilization); diff > meanTol {
				d.addf(bp.Subscription, "meanUtilization", bp.MeanUtilization, lp.MeanUtilization)
			}
			if samples := pools.perSub[bp.Subscription]; len(samples) > 0 && prof.Samples > 0 {
				sort.Float64s(samples)
				q := stats.QuantilesOf(samples, 0.5, 0.95)
				if !quantileOK(samples, 0.5, q[0], prof.UtilP50, qTol) {
					d.addf(bp.Subscription, "utilP50", q[0], prof.UtilP50)
				}
				if !quantileOK(samples, 0.95, q[1], prof.UtilP95, qTol) {
					d.addf(bp.Subscription, "utilP95", q[1], prof.UtilP95)
				}
			}
		}
		// Region-agnosticism is mean pairwise Pearson over regional hourly
		// series. Carry/interpolate rebuild dropped readings so the series
		// stay anchored, but skip deletes the point outright — and a
		// near-zero correlation has no deterministic bound under point
		// deletion (one lost top-of-hour reading can own a region-hour).
		rasComparable := run.lossless ||
			(rosterComplete && poolComplete && tl.GapPolicy != stream.GapSkip)
		if rasComparable {
			bDefined, lDefined := bp.RegionAgnosticScore > -1, lp.RegionAgnosticScore > -1
			switch {
			case bDefined != lDefined:
				d.addf(bp.Subscription, "regionAgnosticScore", bp.RegionAgnosticScore, lp.RegionAgnosticScore)
			case bDefined:
				if diff := math.Abs(lp.RegionAgnosticScore - bp.RegionAgnosticScore); diff > rasTol {
					d.addf(bp.Subscription, "regionAgnosticScore", bp.RegionAgnosticScore, lp.RegionAgnosticScore)
				}
			}
		}
	}

	if patternTotal > 0 {
		res.PatternAgreement = float64(patternAgree) / float64(patternTotal)
		minAgree := minPatternAgreement
		// Family oracle: the serverless batch and streaming classifiers
		// build their evidence with the identical sketch over the identical
		// delivered-sample order, so on lossless trials any dominant-class
		// disagreement is a pipeline bug, not statistical noise.
		if tl.Family == core.FamilyServerless && run.lossless {
			minAgree = 1
		}
		if res.PatternAgreement < minAgree {
			d.add("", "dominantPattern", fmt.Sprintf("agreement >= %.2f", minAgree),
				fmt.Sprintf("%.4f (%d/%d)", res.PatternAgreement, patternAgree, patternTotal))
		}
	}
	if peakTotal > 0 {
		res.PeakHourAgreement = float64(peakAgree) / float64(peakTotal)
		if res.PeakHourAgreement < minPeakAgreement {
			d.add("", "peakHourUTC", fmt.Sprintf("agreement >= %.2f", minPeakAgreement),
				fmt.Sprintf("%.4f (%d/%d)", res.PeakHourAgreement, peakAgree, peakTotal))
		}
	}

	// Cloud-level quantiles: the live sketches against exact order
	// statistics over the same qualification rule.
	qTol := quantileTolLossy
	if run.lossless {
		qTol = quantileTolLossless
	}
	sum := run.eng.Summary()
	for _, cloud := range core.Clouds() {
		samples := pools.perCloud[cloud]
		if len(samples) == 0 {
			continue
		}
		sort.Float64s(samples)
		q := stats.QuantilesOf(samples, 0.5, 0.95)
		cl := sum.Clouds[cloud.String()]
		if !quantileOK(samples, 0.5, q[0], cl.UtilP50, qTol) {
			d.addf("", "utilP50["+cloud.String()+"]", q[0], cl.UtilP50)
		}
		if !quantileOK(samples, 0.95, q[1], cl.UtilP95, qTol) {
			d.addf("", "utilP95["+cloud.String()+"]", q[1], cl.UtilP95)
		}
	}

	// Ledger reconciliation: the injector's exact account of what it did
	// must match the ingestor's books, and nothing repairable may be lost.
	fs := run.eng.FaultStats()
	if fs.DuplicatesDropped != run.ledger.Duplicated {
		d.addf("", "ledger.duplicates", float64(run.ledger.Duplicated), float64(fs.DuplicatesDropped))
	}
	if fs.Reordered != run.ledger.Delayed {
		d.addf("", "ledger.reordered", float64(run.ledger.Delayed), float64(fs.Reordered))
	}
	if fs.QuarantinedCorrupt != run.ledger.Corrupted {
		d.addf("", "ledger.corrupt", float64(run.ledger.Corrupted), float64(fs.QuarantinedCorrupt))
	}
	if fs.QuarantinedLate != 0 {
		d.addf("", "ledger.late", 0, float64(fs.QuarantinedLate))
	}
	// Every lost VM observation needs at least one destroyed sample.
	if lost := run.ledger.Dropped + run.ledger.Corrupted; res.Deficit > lost {
		d.addf("", "deficit", float64(lost), float64(res.Deficit))
	}

	return res
}

// compareShardInvariance holds a sharded run against the single-ingestor
// reference that replayed the identical (seeded) fault sequence. On
// lossless trials every published profile, the live profiles, the
// per-cloud summary, and the fault ledger must be bit-identical — the
// sharded merge contract. On lossy trials the destroyed readings are the
// same on both sides, so the ledgers must still reconcile exactly.
// Divergences are reported with the reference in the Batch column.
func compareShardInvariance(res *TrialResult, ref, sharded *streamRun, maxDiv int) {
	d := &diffState{res: res, max: maxDiv}
	if w, g := ref.eng.FaultStats(), sharded.eng.FaultStats(); w != g {
		d.add("", "shard.faultStats", fmt.Sprintf("%+v", w), fmt.Sprintf("%+v", g))
	}
	if !ref.lossless {
		return
	}
	all := kb.Query{MinRegionAgnosticScore: -2}
	want, got := ref.eng.KB().List(all), sharded.eng.KB().List(all)
	if len(got) != len(want) {
		d.add("", "shard.profiles", fmt.Sprintf("%d", len(want)), fmt.Sprintf("%d", len(got)))
		return
	}
	for i := range want {
		if !reflect.DeepEqual(*got[i], *want[i]) {
			d.add(want[i].Subscription, "shard.profile",
				fmt.Sprintf("%+v", *want[i]), fmt.Sprintf("%+v", *got[i]))
		}
	}
	if w, g := ref.eng.Profiles(all), sharded.eng.Profiles(all); !reflect.DeepEqual(w, g) {
		d.add("", "shard.liveProfiles", fmt.Sprintf("%d entries", len(w)), "diverged")
	}
	if w, g := ref.eng.Summary(), sharded.eng.Summary(); !reflect.DeepEqual(w, g) {
		d.add("", "shard.summary", fmt.Sprintf("%+v", w), fmt.Sprintf("%+v", g))
	}
}
