package diffcheck

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cloudlens/internal/core"
	"cloudlens/internal/policy"
	"cloudlens/internal/sim"
	"cloudlens/internal/stream"
	"cloudlens/internal/trace"
	"cloudlens/internal/workload"
)

// The policy-determinism oracle holds the decision ledger to the same
// standard the gauntlet holds the knowledge base: pure function of the
// inputs. For each trial it replays one generated workload into
// fold-boundary snapshots and feeds one seeded request stream to the
// engine, three times over — twice single-ingestor, once sharded — and
// demands the serialized ledgers match byte for byte. It then replays
// every ledger entry counterfactually and demands the retained snapshot
// reproduce the chosen action's score exactly.

// PolicyConfig parameterizes the policy-determinism trials.
type PolicyConfig struct {
	// Trials is the number of randomized trials (default 5).
	Trials int
	// Seed derives every trial's workload seed and request stream.
	Seed uint64
	// Days is the observation-window length per trial (default 3).
	Days int
	// Scale is the workload universe scale (default 0.05).
	Scale float64
	// Requests is the request-stream length per policy (default 64).
	Requests int
	// ShardCounts lists the shard counts whose ledgers must agree
	// (default {1, 4}; the first entry is also run twice for the
	// same-configuration check).
	ShardCounts []int
	// Spec is the policy set under test (default "oversub,spot,balance").
	Spec string
}

func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.Days < 3 {
		c.Days = 3
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Requests <= 0 {
		c.Requests = 64
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 4}
	}
	if c.Spec == "" {
		c.Spec = "oversub,spot,balance"
	}
	return c
}

// PolicyTrialResult is one trial's verdict.
type PolicyTrialResult struct {
	Trial       int      `json:"trial"`
	Seed        uint64   `json:"seed"`
	Decisions   int      `json:"decisions"`
	Divergences []string `json:"divergences,omitempty"`
}

// PolicyReport collects every trial.
type PolicyReport struct {
	Config  PolicyConfig
	Results []PolicyTrialResult
}

// Failed reports whether any trial diverged.
func (r *PolicyReport) Failed() bool {
	for _, res := range r.Results {
		if len(res.Divergences) > 0 {
			return true
		}
	}
	return false
}

func (r *PolicyReport) String() string {
	var b strings.Builder
	bad := 0
	for _, res := range r.Results {
		for _, d := range res.Divergences {
			fmt.Fprintf(&b, "policy trial %d (seed %d): %s\n", res.Trial, res.Seed, d)
		}
		if len(res.Divergences) > 0 {
			bad++
		}
	}
	fmt.Fprintf(&b, "policy determinism: %d trials, %d diverged (spec %q, shards %v)",
		len(r.Results), bad, r.Config.Spec, r.Config.ShardCounts)
	return b.String()
}

// RunPolicy executes the policy-determinism trials. The error covers
// harness failures; divergences are data in the report.
func RunPolicy(cfg PolicyConfig) (*PolicyReport, error) {
	cfg = cfg.withDefaults()
	rep := &PolicyReport{Config: cfg}
	for i := 0; i < cfg.Trials; i++ {
		res, err := runPolicyTrial(i, cfg)
		if err != nil {
			return rep, fmt.Errorf("diffcheck policy trial %d: %w", i, err)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

func runPolicyTrial(index int, cfg PolicyConfig) (PolicyTrialResult, error) {
	res := PolicyTrialResult{Trial: index, Seed: cfg.Seed + uint64(index)*1000003}

	wl := workload.DefaultConfig(res.Seed)
	wl.Scale = cfg.Scale
	g := sim.WeekGrid()
	g.N = cfg.Days * g.StepsPerDay()
	wl.Grid = g
	tr, err := workload.Generate(wl)
	if err != nil {
		return res, fmt.Errorf("generate: %w", err)
	}

	// Ledger bytes per run: [shards[0] run A, shards[0] run B, shards[1:]...].
	type run struct {
		label  string
		shards int
	}
	runs := []run{
		{fmt.Sprintf("shards=%d runA", cfg.ShardCounts[0]), cfg.ShardCounts[0]},
		{fmt.Sprintf("shards=%d runB", cfg.ShardCounts[0]), cfg.ShardCounts[0]},
	}
	for _, s := range cfg.ShardCounts[1:] {
		runs = append(runs, run{fmt.Sprintf("shards=%d", s), s})
	}

	var refLedger []byte
	for i, r := range runs {
		ledger, decisions, divs, err := policyLedgerRun(tr, cfg, res.Seed, r.shards)
		if err != nil {
			return res, fmt.Errorf("%s: %w", r.label, err)
		}
		res.Decisions = decisions
		res.Divergences = append(res.Divergences, divs...)
		if i == 0 {
			refLedger = ledger
			continue
		}
		if !bytes.Equal(ledger, refLedger) {
			res.Divergences = append(res.Divergences, fmt.Sprintf(
				"%s: ledger differs from %s (%d vs %d bytes)",
				r.label, runs[0].label, len(ledger), len(refLedger)))
		}
	}
	return res, nil
}

// policyLedgerRun replays the trace at the given shard count, drives the
// seeded request stream, and returns the serialized ledger plus any
// counterfactual-reproduction divergences.
func policyLedgerRun(tr *trace.Trace, cfg PolicyConfig, seed uint64, shards int) ([]byte, int, []string, error) {
	src := policy.NewFoldSource()
	opts := stream.Options{Shards: shards, FoldObserver: src}
	replayer := stream.NewReplayer(tr, opts)
	eng := stream.NewEngine(tr, opts)
	src.Bind(eng.KB())
	eng.SetRecycler(replayer.Recycle)

	errCh := make(chan error, 1)
	go func() { errCh <- replayer.Run(context.Background()) }()
	for b := range replayer.Events() {
		eng.ObserveBatch(b)
	}
	if err := <-errCh; err != nil {
		return nil, 0, nil, fmt.Errorf("replay: %w", err)
	}
	eng.Finish()

	pols, err := policy.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("spec: %w", err)
	}
	peng, err := policy.NewEngine(src, pols, policy.Options{
		TraceLevel:      policy.TraceSpans,
		CounterfactualK: 4,
	})
	if err != nil {
		return nil, 0, nil, err
	}

	for _, req := range policyRequests(peng, seed, cfg.Requests) {
		if _, err := peng.Decide(req); err != nil {
			return nil, 0, nil, fmt.Errorf("decide: %w", err)
		}
	}

	var divs []string
	decisions := peng.Ledger().Len()
	for id := uint64(1); id <= uint64(decisions); id++ {
		cf, err := peng.Counterfactual(id)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("counterfactual %d: %w", id, err)
		}
		if !cf.Reproduced {
			divs = append(divs, fmt.Sprintf(
				"shards=%d entry %d: counterfactual replay scored %v, ledger says %v",
				shards, id, cf.ReplayScore, cf.OriginalScore))
		}
	}

	var buf bytes.Buffer
	if err := peng.Ledger().WriteJSONL(&buf); err != nil {
		return nil, 0, nil, fmt.Errorf("serialize ledger: %w", err)
	}
	return buf.Bytes(), decisions, divs, nil
}

// policyRequests derives the deterministic request stream from (snapshot,
// policies, seed) — the same construction policysim uses, kept here so
// the oracle does not depend on command wiring.
func policyRequests(eng *policy.Engine, seed uint64, perPolicy int) []policy.Request {
	sn := eng.Snapshot()
	profiles := sn.Profiles()
	regionSet := map[string]bool{}
	for _, p := range profiles {
		for _, r := range p.Regions {
			regionSet[r] = true
		}
	}
	regions := make([]string, 0, len(regionSet))
	for r := range regionSet {
		regions = append(regions, r)
	}
	sort.Strings(regions)

	rng := rand.New(rand.NewSource(int64(seed)))
	var out []policy.Request
	for _, pol := range eng.Policies() {
		for i := 0; i < perPolicy; i++ {
			req := policy.Request{
				Policy: pol,
				Cores:  1 + rng.Intn(16),
			}
			if len(profiles) > 0 {
				req.Subscription = profiles[rng.Intn(len(profiles))].Subscription
			} else {
				req.Subscription = core.SubscriptionID("none")
			}
			if pol == "balance" && len(regions) > 0 {
				a := rng.Intn(len(regions))
				b := rng.Intn(len(regions))
				req.Regions = []string{regions[a]}
				if b != a {
					req.Regions = append(req.Regions, regions[b])
				}
			}
			out = append(out, req)
		}
	}
	return out
}
