// Package diffcheck is the differential-correctness gauntlet: it holds
// the two independent characterization implementations — the batch
// knowledge-base extractor (kb.Extract) and the streaming ingestion
// pipeline — against each other over a randomized matrix of synthetic
// workloads. Each trial generates a small multi-day trace from a seeded
// workload model, runs both implementations over the same data (the
// streaming side optionally through seeded fault injection and a
// mid-replay kill/checkpoint/resume), and diffs the resulting knowledge
// bases field by field.
//
// The comparison contract is fault-aware and deterministic:
//
//   - Lossless trials (no drops, no corruption — duplicates and bounded
//     delays are fully repaired by the reorder ring) require exact
//     equality on every structural field: the subscription roster, VM
//     counts, snapshot census, lifetime statistics, regions, services.
//   - Lossy trials (drops or corruption) can only lose information,
//     never invent it: per subscription the streaming VM count must not
//     exceed the batch count, and the total deficit across the whole
//     knowledge base is bounded by the injector's exact fault ledger.
//   - Statistical fields — dominant patterns, peak hours, mean and
//     quantile utilization, region-agnosticism — are held to explicit
//     tolerance bands (tighter when lossless), mirroring the golden
//     batch-equivalence test's agreement thresholds.
//
// Every divergence is reported with the trial's full recipe (seed,
// scale, gap policy, fault spec, kill step) and the first diverging
// subscription and field, so a failure replays exactly.
package diffcheck

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"cloudlens/internal/core"
	"cloudlens/internal/faultgen"
	"cloudlens/internal/kb"
	"cloudlens/internal/sim"
	"cloudlens/internal/stream"
	"cloudlens/internal/trace"
	"cloudlens/internal/workload"
)

// Config parameterizes a gauntlet run. The zero value is not runnable;
// use withDefaults via Run.
type Config struct {
	// Trials is the number of randomized CPU-family trials (default 25;
	// -1 disables, for family-only runs).
	Trials int
	// Seed derives every trial's workload seed, fault seed, and kill
	// step; the same Config always runs the same matrix.
	Seed uint64
	// Days is the observation-window length per trial (default 3; the
	// minimum, since the snapshot analyses sample Wednesday noon).
	Days int
	// Scales are cycled across trials (default {0.05, 0.1}).
	Scales []float64
	// FaultSpecs are cycled across trials, in faultgen.ParseSpec grammar
	// (default: a mix of clean, repairable-only, and lossy specs).
	FaultSpecs []string
	// KillEvery makes every n-th trial checkpoint mid-replay and resume
	// from the serialized bytes (default 2; 0 disables).
	KillEvery int
	// ShardCounts are cycled across trials as the streaming side's shard
	// count (default nil: single-ingestor only). A trial with more than
	// one shard additionally runs an uninterrupted single-ingestor
	// reference over the same faulted replay and, on lossless trials,
	// holds the sharded knowledge base bit-exactly to it.
	ShardCounts []int
	// FamilyTrials appends serverless-family trials after the CPU matrix
	// (default 10; -1 disables). These replay a one-minute-grid invocation
	// trace through the same fault/kill machinery and hold the
	// dominant-class (family-taxonomy) agreement to 100% on lossless runs:
	// both sides build the classification evidence with the same sketch,
	// so any disagreement is a pipeline bug, not statistical noise.
	FamilyTrials int
	// FamilyScales are cycled across the serverless trials (default
	// {0.5, 1}); the serverless universe is app-count-scaled and much
	// smaller than the CPU one, so it runs at higher scale.
	FamilyScales []float64
	// MaxDivergencesPerTrial caps the report size (default 16).
	MaxDivergencesPerTrial int
}

func (c Config) withDefaults() Config {
	if c.Trials < 0 {
		c.Trials = 0
	} else if c.Trials == 0 {
		c.Trials = 25
	}
	if c.Days < 3 {
		c.Days = 3
	}
	if len(c.Scales) == 0 {
		c.Scales = []float64{0.05, 0.1}
	}
	if len(c.FaultSpecs) == 0 {
		c.FaultSpecs = []string{
			"off",
			"dup=0.01,seed=7",
			"delay=0.01:3,seed=9",
			"dup=0.005,delay=0.005:2,seed=11",
			"drop=0.01,seed=13",
			"drop=0.005,dup=0.005,delay=0.005:3,corrupt=0.005,seed=17",
		}
	}
	if c.KillEvery < 0 {
		c.KillEvery = 0
	} else if c.KillEvery == 0 {
		c.KillEvery = 2
	}
	if c.FamilyTrials < 0 {
		c.FamilyTrials = 0
	} else if c.FamilyTrials == 0 {
		c.FamilyTrials = 10
	}
	if len(c.FamilyScales) == 0 {
		c.FamilyScales = []float64{0.5, 1}
	}
	if c.MaxDivergencesPerTrial <= 0 {
		c.MaxDivergencesPerTrial = 16
	}
	return c
}

// Trial is one fully derived trial recipe. Every field is printed on
// divergence so the exact trial replays from the report alone.
type Trial struct {
	Index int    `json:"index"`
	Seed  uint64 `json:"seed"`
	// Family selects the workload family (zero value: the CPU family).
	Family    core.Family      `json:"family,omitempty"`
	Scale     float64          `json:"scale"`
	GapPolicy stream.GapPolicy `json:"gapPolicy"`
	Faults    string           `json:"faults"`
	// KillStep is the batch step after which the run checkpointed and
	// resumed; -1 means the run was uninterrupted.
	KillStep int `json:"killStep"`
	// Shards is the streaming side's shard count (0 or 1: single
	// ingestor).
	Shards int `json:"shards,omitempty"`
}

func (t Trial) String() string {
	kill := "none"
	if t.KillStep >= 0 {
		kill = fmt.Sprintf("step %d", t.KillStep)
	}
	shards := ""
	if t.Shards > 1 {
		shards = fmt.Sprintf(" shards=%d", t.Shards)
	}
	family := ""
	if t.Family != core.FamilyCPU {
		family = fmt.Sprintf(" family=%s", t.Family)
	}
	return fmt.Sprintf("trial %d: seed=%d scale=%g gap=%s faults=%q kill=%s%s%s",
		t.Index, t.Seed, t.Scale, t.GapPolicy, t.Faults, kill, shards, family)
}

// Run executes the gauntlet and returns the full report. The error covers
// harness failures (generation, replay, checkpointing) — divergences are
// data, reported in the Report, not errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Config: cfg}
	cpuN := cfg.Days * sim.WeekGrid().StepsPerDay()
	servN := cfg.Days * workload.ServerlessGrid(cfg.Days).StepsPerDay()
	for i := 0; i < cfg.Trials+cfg.FamilyTrials; i++ {
		// A per-trial PRNG seeded from (Seed, index) keeps trials
		// independent of each other and of the matrix size.
		rng := rand.New(rand.NewSource(int64(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)))
		tl := Trial{
			Index:     i,
			Seed:      cfg.Seed + uint64(i)*1000003,
			Scale:     cfg.Scales[i%len(cfg.Scales)],
			GapPolicy: []stream.GapPolicy{stream.GapCarry, stream.GapSkip, stream.GapInterpolate}[i%3],
			Faults:    cfg.FaultSpecs[i%len(cfg.FaultSpecs)],
			KillStep:  -1,
		}
		gridN := cpuN
		if i >= cfg.Trials {
			// Serverless-family trials: the same fault/kill/gap matrix
			// replayed over the one-minute invocation grid.
			tl.Family = core.FamilyServerless
			tl.Scale = cfg.FamilyScales[(i-cfg.Trials)%len(cfg.FamilyScales)]
			gridN = servN
		}
		if cfg.KillEvery > 0 && i%cfg.KillEvery == cfg.KillEvery-1 {
			// Anywhere strictly inside the window, including steps where
			// the reorder ring holds undelivered state.
			tl.KillStep = 1 + rng.Intn(gridN-2)
		}
		if len(cfg.ShardCounts) > 0 {
			tl.Shards = cfg.ShardCounts[i%len(cfg.ShardCounts)]
		}
		res, err := runTrial(tl, cfg)
		if err != nil {
			return rep, fmt.Errorf("diffcheck: %s: %w", tl, err)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// runTrial generates one synthetic workload, runs both implementations
// over it, and diffs the knowledge bases. Sharded trials also run an
// uninterrupted single-ingestor reference over the same faulted replay:
// on lossless trials the sharded knowledge base must match it bit for
// bit (even when the sharded run was killed and resumed mid-week); on
// lossy trials both sides see the identical seeded fault sequence, so
// their ledgers must still reconcile exactly.
func runTrial(tl Trial, cfg Config) (TrialResult, error) {
	tr, batch, res, err := materializeTrial(tl, cfg)
	if err != nil {
		return TrialResult{}, err
	}
	result := compareTrial(tl, tr, batch, res, cfg.MaxDivergencesPerTrial)
	if tl.Shards > 1 {
		refTl := tl
		refTl.Shards = 0
		refTl.KillStep = -1
		spec, err := faultgen.ParseSpec(tl.Faults)
		if err != nil {
			return result, fmt.Errorf("fault spec: %w", err)
		}
		ref, err := runStream(tr, refTl, spec)
		if err != nil {
			return result, fmt.Errorf("reference stream: %w", err)
		}
		compareShardInvariance(&result, ref, res, cfg.MaxDivergencesPerTrial)
	}
	return result, nil
}

// materializeTrial produces a trial's trace and both knowledge bases
// without comparing them (the comparator's own tests corrupt the streaming
// side first).
func materializeTrial(tl Trial, cfg Config) (*trace.Trace, *kb.Store, *streamRun, error) {
	var tr *trace.Trace
	var err error
	if tl.Family == core.FamilyServerless {
		sc := workload.DefaultServerlessConfig(tl.Seed)
		sc.Scale = tl.Scale
		sc.Grid = workload.ServerlessGrid(cfg.Days)
		tr, err = workload.GenerateServerless(sc)
	} else {
		wl := workload.DefaultConfig(tl.Seed)
		wl.Scale = tl.Scale
		g := sim.WeekGrid()
		g.N = cfg.Days * g.StepsPerDay()
		wl.Grid = g
		tr, err = workload.Generate(wl)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("generate: %w", err)
	}

	batch := kb.Extract(tr, kb.ExtractOptions{})

	spec, err := faultgen.ParseSpec(tl.Faults)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fault spec: %w", err)
	}
	res, err := runStream(tr, tl, spec)
	if err != nil {
		return nil, nil, nil, err
	}
	return tr, batch, res, nil
}

// streamRun is the streaming side's complete output for one trial.
type streamRun struct {
	eng stream.Engine
	// ledger is the injector's exact account of what it perturbed (zero
	// for clean trials).
	ledger faultgen.Ledger
	// lossless reports whether every injected fault is repairable: drops
	// and corruption destroy readings, duplicates and bounded delays are
	// fully absorbed by the reorder ring.
	lossless bool
}

// runStream replays the trace into a fresh engine (single or sharded per
// tl.Shards), optionally through the fault injector, and — on kill trials
// — serializes the engine at the kill step, restores it from the bytes,
// and finishes on the restored instance.
func runStream(tr *trace.Trace, tl Trial, spec faultgen.Spec) (*streamRun, error) {
	// The reorder window must cover the injector's delay bound or delayed
	// samples are (correctly) quarantined and the trial measures loss,
	// not equivalence.
	lateness := 3
	if spec.Delay > 0 && spec.MaxDelaySteps > lateness {
		lateness = spec.MaxDelaySteps
	}
	opts := stream.Options{
		GapPolicy:        tl.GapPolicy,
		MaxLatenessSteps: lateness,
		Shards:           tl.Shards,
	}

	var src stream.Source = stream.NewReplayer(tr, opts)
	var inj *faultgen.Injector
	if wrap := spec.Wrap(tr.Grid.N, 0, &inj); wrap != nil {
		src = wrap(src)
	}
	eng := stream.NewEngine(tr, opts)
	eng.SetRecycler(src.Recycle)

	errCh := make(chan error, 1)
	go func() { errCh <- src.Run(context.Background()) }()
	killed := tl.KillStep < 0
	for b := range src.Events() {
		step := b.Step
		eng.ObserveBatch(b)
		if !killed && step >= tl.KillStep {
			killed = true
			var buf bytes.Buffer
			if err := eng.WriteCheckpoint(&buf); err != nil {
				return nil, fmt.Errorf("checkpoint at step %d: %w", step, err)
			}
			ck, err := stream.ReadCheckpoint(bytes.NewReader(buf.Bytes()), tr)
			if err != nil {
				return nil, fmt.Errorf("read checkpoint at step %d: %w", step, err)
			}
			resumed, err := stream.RestoreEngine(tr, opts, ck)
			if err != nil {
				return nil, fmt.Errorf("restore at step %d: %w", step, err)
			}
			eng.Abort()
			resumed.SetRecycler(src.Recycle)
			eng = resumed
		}
	}
	if err := <-errCh; err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	eng.Finish()

	run := &streamRun{eng: eng, lossless: spec.Drop == 0 && spec.Corrupt == 0}
	if inj != nil {
		run.ledger = inj.Ledger()
	}
	return run, nil
}
