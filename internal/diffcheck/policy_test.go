package diffcheck

import (
	"strings"
	"testing"
)

// TestPolicyDeterminism runs the policy oracle's compact slice: two
// trials, each replaying the same workload at shards 1 (twice) and 4 and
// demanding byte-identical decision ledgers plus exact counterfactual
// score reproduction. The 5-trial run is wired to `make diffcheck`.
func TestPolicyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial differential run")
	}
	rep, err := RunPolicy(PolicyConfig{Trials: 2, Seed: 20260808})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("policy ledger diverged:\n%s", rep)
	}
	for _, res := range rep.Results {
		if res.Decisions == 0 {
			t.Fatalf("trial %d decided nothing", res.Trial)
		}
	}
	if !strings.Contains(rep.String(), "0 diverged") {
		t.Fatalf("report: %s", rep)
	}
}
