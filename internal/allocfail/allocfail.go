// Package allocfail implements the workload-aware allocation-failure
// prediction the paper calls for in Section III-B: because private cloud
// deployments are large and bursty, whether a deployment will fit depends
// on how the region's load evolves between planning and arrival, and the
// paper argues a "better workload-aware allocation failure prediction
// method ... can be critical for improving the efficiency of capacity
// management for the private cloud workloads".
//
// The experiment: a deployment is planned for a region twelve hours ahead,
// sized inside the at-risk band (0.5x-1.5x of the region's planning-time
// free capacity — requests far from the boundary are trivial either way).
// The predictor sees only planning-time knowledge — the region's current
// allocation level and its recent trend, the request size, the region's
// deployment burstiness (the Figure 3d CV), and the local hour — and must
// predict whether the allocation will fail when it actually arrives. A
// logistic model trained on the first half of the week is evaluated on the
// second half against the static baseline that simply checks whether the
// request fits the currently free capacity (ignoring workload dynamics).
//
// Finding (a negative result worth having): the learned model recovers the
// static check (accuracy parity within a couple of points) but cannot beat
// it — the extra workload features carry almost no signal about what the
// region will look like twelve hours later, exactly because the paper
// characterizes private deployment dynamics as irregular bursts that
// planning-time features cannot anticipate. The experiment is therefore a
// quantitative restatement of Insight 2: under bursty deployments, capacity
// headroom — not clever prediction — is what protects against allocation
// failures.
package allocfail

import (
	"fmt"
	"math"

	"cloudlens/internal/core"
	"cloudlens/internal/sim"
	"cloudlens/internal/stats"
	"cloudlens/internal/trace"
)

// Options tunes the experiment.
type Options struct {
	// Cloud selects the platform (default Private, the paper's focus).
	Cloud core.Cloud
	// LeadSteps is the planning horizon (default 12 steps = 1 hour).
	LeadSteps int
	// ProbesPerRegionHour is how many planned deployments are sampled
	// per region and hour (default 6).
	ProbesPerRegionHour int
	// UsableFraction discounts free capacity for fragmentation
	// (default 0.92: a region cannot be packed to the last core).
	UsableFraction float64
	// Seed drives probe sampling and SGD shuffling.
	Seed uint64
	// Epochs is the SGD pass count (default 40).
	Epochs int
	// LearningRate is the SGD step (default 0.5).
	LearningRate float64
}

func (o Options) withDefaults() Options {
	if !o.Cloud.Valid() {
		o.Cloud = core.Private
	}
	if o.LeadSteps == 0 {
		o.LeadSteps = 144 // 12 hours: the capacity-planning horizon
	}
	if o.ProbesPerRegionHour == 0 {
		o.ProbesPerRegionHour = 6
	}
	if o.UsableFraction == 0 {
		o.UsableFraction = 0.92
	}
	if o.Epochs == 0 {
		o.Epochs = 400
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.5
	}
	return o
}

// Metrics is a binary-classification scorecard.
type Metrics struct {
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// Result reports the comparison.
type Result struct {
	Cloud core.Cloud `json:"cloud"`
	// TrainSamples/TestSamples are the dataset sizes.
	TrainSamples int `json:"trainSamples"`
	TestSamples  int `json:"testSamples"`
	// FailureRate is the base rate of allocation failures in the test
	// half.
	FailureRate float64 `json:"failureRate"`
	// Model is the workload-aware logistic predictor.
	Model Metrics `json:"model"`
	// Baseline checks the request against planning-time free capacity,
	// ignoring workload dynamics.
	Baseline Metrics `json:"baseline"`
	// Weights are the trained logistic coefficients (bias first), for
	// interpretability.
	Weights []float64 `json:"weights"`
}

// sample is one planned deployment.
type sample struct {
	features []float64
	label    bool // true = allocation fails at arrival
	// baselinePred is the static capacity check at planning time.
	baselinePred bool
}

// Run executes the experiment.
func Run(t *trace.Trace, opts Options) (Result, error) {
	opts = opts.withDefaults()
	res := Result{Cloud: opts.Cloud}
	regions := t.Topology.RegionsOf(opts.Cloud)
	if len(regions) == 0 {
		return res, fmt.Errorf("allocfail: no %s regions", opts.Cloud)
	}

	// Per-region allocated-cores series and burstiness.
	allocated := make(map[string][]float64, len(regions))
	burstCV := make(map[string]float64, len(regions))
	physical := make(map[string]float64, len(regions))
	for _, r := range regions {
		allocated[r] = make([]float64, t.Grid.N)
		physical[r] = float64(t.Topology.PhysicalCores(r, opts.Cloud))
		burstCV[r] = stats.CV(t.HourlyCreations(opts.Cloud, r))
	}
	for i := range t.VMs {
		v := &t.VMs[i]
		if v.Cloud != opts.Cloud {
			continue
		}
		series, ok := allocated[v.Region]
		if !ok {
			continue
		}
		from, to, okRange := v.AliveRange(t.Grid.N)
		if !okRange {
			continue
		}
		for s := from; s < to; s++ {
			series[s] += float64(v.Size.Cores)
		}
	}

	// Probe deployments: planned at step s, arriving at s+lead.
	rng := sim.NewRNG(opts.Seed ^ 0x5ca1ab1e)
	stepsPerHour := t.Grid.StepsPerHour()
	var train, test []sample
	half := t.Grid.N / 2
	for _, r := range regions {
		phys := physical[r]
		if phys == 0 {
			continue
		}
		for h := 0; h*stepsPerHour+opts.LeadSteps < t.Grid.N; h++ {
			s := h * stepsPerHour
			arrive := s + opts.LeadSteps
			freeNow := phys - allocated[r][s]
			if freeNow < 1 {
				freeNow = 1
			}
			// Planning-time observable load momentum (last hour).
			trendFrom := s - stepsPerHour
			if trendFrom < 0 {
				trendFrom = 0
			}
			trend := (allocated[r][s] - allocated[r][trendFrom]) / phys
			for p := 0; p < opts.ProbesPerRegionHour; p++ {
				// At-risk requests around the planning-time boundary;
				// anything far from it is trivially decided.
				reqCores := math.Round(freeNow * opts.UsableFraction * (0.5 + rng.Float64()))
				if reqCores < 8 {
					reqCores = 8
				}
				freeLater := phys - allocated[r][arrive]
				// The static check's signed margin is itself a
				// planning-time observable; the model learns
				// workload-aware corrections on top of it.
				margin := (reqCores - freeNow*opts.UsableFraction) / phys
				smp := sample{
					features: []float64{
						1, // bias
						margin * 20,
						reqCores / phys,
						allocated[r][s] / phys,
						trend * 10,
						burstCV[r] / 5,
						float64(t.Grid.MinuteOfDay(s, t.Topology.TZOffsetMin(r))) / 1440,
					},
					label:        reqCores > freeLater*opts.UsableFraction,
					baselinePred: reqCores > freeNow*opts.UsableFraction,
				}
				if s < half {
					train = append(train, smp)
				} else {
					test = append(test, smp)
				}
			}
		}
	}
	if len(train) == 0 || len(test) == 0 {
		return res, fmt.Errorf("allocfail: empty dataset")
	}
	res.TrainSamples = len(train)
	res.TestSamples = len(test)
	fails := 0
	for _, smp := range test {
		if smp.label {
			fails++
		}
	}
	res.FailureRate = float64(fails) / float64(len(test))

	weights := trainLogistic(train, rng, opts)
	res.Weights = weights
	res.Model = score(test, func(smp sample) bool {
		return sigmoid(dot(weights, smp.features)) >= 0.5
	})
	res.Baseline = score(test, func(smp sample) bool { return smp.baselinePred })
	return res, nil
}

// trainLogistic fits a logistic regression with plain SGD; the dataset is
// small and the point is determinism, not speed.
func trainLogistic(train []sample, rng *sim.RNG, opts Options) []float64 {
	dim := len(train[0].features)
	w := make([]float64, dim)
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	// Polyak-style averaging over the tail epochs stabilizes plain SGD;
	// a decaying step and light L2 keep the boundary from chasing noise.
	avg := make([]float64, dim)
	avgCount := 0
	const l2 = 1e-5
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		lr := opts.LearningRate / (1 + 0.05*float64(epoch))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			smp := train[i]
			pred := sigmoid(dot(w, smp.features))
			target := 0.0
			if smp.label {
				target = 1
			}
			g := pred - target
			for d := 0; d < dim; d++ {
				w[d] -= lr * (g*smp.features[d] + l2*w[d])
			}
		}
		if epoch >= opts.Epochs/2 {
			for d := 0; d < dim; d++ {
				avg[d] += w[d]
			}
			avgCount++
		}
	}
	for d := 0; d < dim; d++ {
		avg[d] /= float64(avgCount)
	}
	return avg
}

func dot(w, x []float64) float64 {
	s := 0.0
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}

func sigmoid(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}

// score computes the classification metrics of a predictor over samples.
func score(samples []sample, predict func(sample) bool) Metrics {
	var tp, fp, tn, fn float64
	for _, smp := range samples {
		pred := predict(smp)
		switch {
		case pred && smp.label:
			tp++
		case pred && !smp.label:
			fp++
		case !pred && smp.label:
			fn++
		default:
			tn++
		}
	}
	var m Metrics
	total := tp + fp + tn + fn
	if total > 0 {
		m.Accuracy = (tp + tn) / total
	}
	if tp+fp > 0 {
		m.Precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		m.Recall = tp / (tp + fn)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
