package allocfail

import (
	"sync"
	"testing"

	"cloudlens/internal/core"
	"cloudlens/internal/trace"
	"cloudlens/internal/workload"
)

var (
	trOnce sync.Once
	tr     *trace.Trace
	trErr  error
)

func sharedTrace(t *testing.T) *trace.Trace {
	t.Helper()
	trOnce.Do(func() {
		tr, trErr = workload.Generate(workload.DefaultConfig(41))
	})
	if trErr != nil {
		t.Fatalf("generate: %v", trErr)
	}
	return tr
}

func TestRunBasics(t *testing.T) {
	res, err := Run(sharedTrace(t), Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cloud != core.Private {
		t.Fatalf("default cloud = %v", res.Cloud)
	}
	if res.TrainSamples < 1000 || res.TestSamples < 1000 {
		t.Fatalf("dataset too small: %d/%d", res.TrainSamples, res.TestSamples)
	}
	if res.FailureRate <= 0.1 || res.FailureRate >= 0.9 {
		t.Fatalf("failure base rate %.3f implausible", res.FailureRate)
	}
	if res.Model.F1 <= 0 || res.Baseline.F1 <= 0 {
		t.Fatal("degenerate classifiers")
	}
	if len(res.Weights) != 7 {
		t.Fatalf("weights = %v", res.Weights)
	}
}

func TestModelRecoversStaticCheck(t *testing.T) {
	res, err := Run(sharedTrace(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The defensible claims (see the package comment): the learned model
	// recovers the static capacity check to within a few points —
	// showing the features carry the boundary — while neither predictor
	// dominates, because burst arrivals are unpredictable (Insight 2).
	if res.Model.Accuracy < res.Baseline.Accuracy-0.05 {
		t.Fatalf("model accuracy %.3f far below baseline %.3f: failed to learn the boundary",
			res.Model.Accuracy, res.Baseline.Accuracy)
	}
	if res.Model.Accuracy < 0.85 {
		t.Fatalf("model accuracy %.3f too low", res.Model.Accuracy)
	}
	if res.Model.Recall < 0.9 || res.Baseline.Recall < 0.9 {
		t.Fatalf("recall too low: model %.3f baseline %.3f",
			res.Model.Recall, res.Baseline.Recall)
	}
	// The at-risk band is genuinely ambiguous: both classes present.
	if res.FailureRate < 0.2 || res.FailureRate > 0.8 {
		t.Fatalf("failure base rate %.3f: band miscalibrated", res.FailureRate)
	}
}

func TestRequestSizeWeightIsPositive(t *testing.T) {
	res, err := Run(sharedTrace(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Interpretability: bigger requests and fuller regions must raise
	// the predicted failure probability.
	if res.Weights[1] <= 0 {
		t.Fatalf("margin weight %.3f not positive", res.Weights[1])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(sharedTrace(t), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sharedTrace(t), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Model != b.Model || a.Weights[1] != b.Weights[1] {
		t.Fatal("experiment not deterministic in the seed")
	}
}

func TestPublicCloudRuns(t *testing.T) {
	res, err := Run(sharedTrace(t), Options{Seed: 1, Cloud: core.Public})
	if err != nil {
		t.Fatalf("Run(public): %v", err)
	}
	if res.TestSamples == 0 {
		t.Fatal("no public samples")
	}
}
