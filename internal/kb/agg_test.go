package kb

import (
	"reflect"
	"testing"

	"cloudlens/internal/core"
)

func regionStore() *Store {
	s := NewStore()
	s.Put(&Profile{Subscription: "a", Cloud: core.Private, Regions: []string{"east", "west"},
		VMsObserved: 10, SnapshotCores: 40, MeanUtilization: 0.3,
		DominantPattern: core.PatternStable, RegionAgnosticScore: 0.9})
	s.Put(&Profile{Subscription: "b", Cloud: core.Private, Regions: []string{"east"},
		VMsObserved: 4, SnapshotCores: 8, MeanUtilization: 0.5,
		DominantPattern: core.PatternDiurnal, RegionAgnosticScore: -1})
	s.Put(&Profile{Subscription: "c", Cloud: core.Public, Regions: []string{"west", "east"},
		VMsObserved: 6, SnapshotCores: 12, MeanUtilization: 0.1,
		DominantPattern: core.PatternStable, RegionAgnosticScore: 0.2})
	return s
}

func TestRegionsRollup(t *testing.T) {
	sn := NewSnapshot(regionStore(), 0, 1)
	regions := sn.Regions()

	if len(regions) != 2 || regions[0].Region != "east" || regions[1].Region != "west" {
		t.Fatalf("regions = %+v", regions)
	}
	east := regions[0]
	if east.Subscriptions != 3 || east.MultiRegionSubs != 2 {
		t.Errorf("east counts = %+v", east)
	}
	// Only "a" clears the region-agnostic threshold among east's
	// multi-region subscriptions.
	if east.RegionAgnosticSubs != 1 {
		t.Errorf("east regionAgnosticSubs = %d, want 1", east.RegionAgnosticSubs)
	}
	if east.VMsObserved != 20 || east.SnapshotCores != 60 {
		t.Errorf("east totals = %+v", east)
	}
	if want := (0.3 + 0.5 + 0.1) / 3; east.MeanUtilization != want {
		t.Errorf("east mean utilization = %v, want %v", east.MeanUtilization, want)
	}
	// Stable appears twice, periodic once.
	if east.DominantPattern != core.PatternStable {
		t.Errorf("east dominant pattern = %v", east.DominantPattern)
	}
	west := regions[1]
	if west.Subscriptions != 2 || west.MultiRegionSubs != 2 || west.VMsObserved != 16 {
		t.Errorf("west counts = %+v", west)
	}

	// Memoized on the snapshot: the same slice comes back, not a rebuild.
	if &sn.Regions()[0] != &regions[0] {
		t.Error("Regions recomputed on second call")
	}
	// And a pure function of the profile set: an identical store built in
	// a different insertion order rolls up identically.
	s2 := NewStore()
	for _, p := range regionStore().List(MatchAll()) {
		s2.Put(p)
	}
	if got := NewSnapshot(s2, 9, 9).Regions(); !reflect.DeepEqual(got, regions) {
		t.Errorf("rollup not deterministic:\n%+v\nvs\n%+v", got, regions)
	}
}
