package kb

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"cloudlens/internal/core"
)

func TestETagMatches(t *testing.T) {
	cases := []struct {
		header, etag string
		want         bool
	}{
		{`"abc"`, `"abc"`, true},
		{`"abc"`, `"def"`, false},
		{`W/"abc"`, `"abc"`, true},  // weak on the request side
		{`"abc"`, `W/"abc"`, true},  // weak on the response side
		{`"x", "abc"`, `"abc"`, true},
		{`"x" , W/"abc"`, `"abc"`, true},
		{`*`, `"anything"`, true},
		{`"x", "y"`, `"abc"`, false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, c.etag); got != c.want {
			t.Errorf("etagMatches(%q, %q) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}

func TestCheckConditional(t *testing.T) {
	etag := `"fnv1a:0123456789abcdef"`
	modified := time.Date(2023, 6, 1, 12, 0, 0, 345e6, time.UTC) // sub-second publish time

	do := func(method, inm, ims string) (*httptest.ResponseRecorder, bool) {
		r := httptest.NewRequest(method, "/x", nil)
		if inm != "" {
			r.Header.Set("If-None-Match", inm)
		}
		if ims != "" {
			r.Header.Set("If-Modified-Since", ims)
		}
		w := httptest.NewRecorder()
		return w, checkConditional(w, r, etag, modified)
	}

	// Unconditional GET: validators attached, body expected.
	w, hit := do(http.MethodGet, "", "")
	if hit {
		t.Error("unconditional GET answered 304")
	}
	if w.Header().Get("ETag") != etag {
		t.Errorf("ETag = %q", w.Header().Get("ETag"))
	}
	if lm := w.Header().Get("Last-Modified"); lm != modified.UTC().Format(http.TimeFormat) {
		t.Errorf("Last-Modified = %q", lm)
	}

	// Matching If-None-Match: 304, validators still attached.
	w, hit = do(http.MethodGet, etag, "")
	if !hit || w.Code != http.StatusNotModified {
		t.Errorf("matching INM: hit=%v code=%d", hit, w.Code)
	}
	if w.Header().Get("ETag") != etag {
		t.Error("304 lost its ETag")
	}

	// If-None-Match present and failing decides alone: a current
	// If-Modified-Since must not rescue the 304 (RFC 9110 precedence).
	_, hit = do(http.MethodGet, `"stale"`, modified.UTC().Format(http.TimeFormat))
	if hit {
		t.Error("failed INM fell through to IMS")
	}

	// If-Modified-Since at the (second-truncated) publish time: 304 even
	// though the snapshot's publish time has sub-second precision.
	_, hit = do(http.MethodGet, "", modified.UTC().Format(http.TimeFormat))
	if !hit {
		t.Error("IMS at publish time not honoured")
	}

	// Older If-Modified-Since: full response.
	_, hit = do(http.MethodGet, "", modified.Add(-time.Hour).UTC().Format(http.TimeFormat))
	if hit {
		t.Error("stale IMS answered 304")
	}

	// Conditionals only apply to GET/HEAD.
	_, hit = do(http.MethodPost, etag, "")
	if hit {
		t.Error("POST answered 304")
	}
}

// TestHandlerConditionalRequests drives the full v1 surface through
// NewHandler: repeated GETs against one snapshot must be byte-identical
// under one ETag, conditional GETs must collapse to 304, and a write must
// flip the validator.
func TestHandlerConditionalRequests(t *testing.T) {
	store := snapStore()
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	get := func(path, inm string) (int, string, []byte) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("ETag"), body
	}

	for _, path := range []string{"/api/v1/summary", "/api/v1/profiles", "/api/v1/profiles/a"} {
		code1, etag1, body1 := get(path, "")
		code2, etag2, body2 := get(path, "")
		if code1 != http.StatusOK || code2 != http.StatusOK {
			t.Fatalf("%s: codes %d, %d", path, code1, code2)
		}
		if etag1 == "" || etag1 != etag2 {
			t.Errorf("%s: unstable ETag %q vs %q", path, etag1, etag2)
		}
		if !bytes.Equal(body1, body2) {
			t.Errorf("%s: repeated GET bodies differ", path)
		}

		code3, _, body3 := get(path, etag1)
		if code3 != http.StatusNotModified {
			t.Errorf("%s: conditional GET = %d, want 304", path, code3)
		}
		if len(body3) != 0 {
			t.Errorf("%s: 304 carried a body (%d bytes)", path, len(body3))
		}
	}

	// All snapshot-backed routes share one validator: the same snapshot
	// serves them all.
	_, sumTag, _ := get("/api/v1/summary", "")
	_, profTag, _ := get("/api/v1/profiles", "")
	if sumTag != profTag {
		t.Errorf("summary and profiles disagree on the snapshot: %q vs %q", sumTag, profTag)
	}

	// A write invalidates: the old validator stops matching and the new
	// representation differs.
	_, oldTag, oldBody := get("/api/v1/summary", "")
	store.Put(&Profile{Subscription: "z", Cloud: core.Public, MeanUtilization: 0.9, RegionAgnosticScore: -1})
	code, newTag, newBody := get("/api/v1/summary", oldTag)
	if code != http.StatusOK {
		t.Fatalf("post-write conditional GET = %d, want 200", code)
	}
	if newTag == oldTag {
		t.Error("ETag unchanged across a write")
	}
	if bytes.Equal(oldBody, newBody) {
		t.Error("summary unchanged across a write")
	}

	// Version and the route index are content-cached: stable ETags, 304 on
	// replay, no Last-Modified (nothing publishes them).
	for _, path := range []string{"/api/v1/version", "/api/v1/"} {
		_, tag, _ := get(path, "")
		if tag == "" {
			t.Errorf("%s: no ETag", path)
			continue
		}
		if code, _, _ := get(path, tag); code != http.StatusNotModified {
			t.Errorf("%s: conditional GET = %d, want 304", path, code)
		}
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},             // absent: identity default
		{"gzip", true},
		{"x-gzip", true},        // historical alias, RFC 9110 §8.4.1.3
		{"GZIP", true},          // codings compare case-insensitively
		{" gzip ", true},
		{"br, gzip", true},
		{"gzip;q=1.0", true},
		{"gzip;q=0.5", true},
		{"gzip;q=0", false},     // explicitly refused
		{"gzip;q=0.000", false},
		{"gzip;q=banana", false}, // malformed q: stay conservative
		{"*", false},            // wildcard: identity is always acceptable
		{"br", false},
		{"identity", false},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, "/x", nil)
		if c.header != "" {
			r.Header.Set("Accept-Encoding", c.header)
		}
		if got := acceptsGzip(r); got != c.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestGzipContentNegotiation pins the pre-encoded read contract of
// WriteSnapshotRaw on /api/v1/summary: a request accepting gzip receives a
// gzip entity that is byte-identical across repeats (one compression per
// snapshot, memoized), decompresses to exactly the identity body, shares
// the identity representation's ETag, and collapses to 304 under the same
// validator. Vary: Accept-Encoding accompanies every response, 304s
// included.
func TestGzipContentNegotiation(t *testing.T) {
	store := snapStore()
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	get := func(acceptEncoding, inm string) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/summary", nil)
		if acceptEncoding != "" {
			// An explicit Accept-Encoding disables the transport's
			// transparent decompression: the test sees the wire bytes.
			req.Header.Set("Accept-Encoding", acceptEncoding)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	respID, plain := get("identity", "")
	if respID.StatusCode != http.StatusOK || respID.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity GET: %d, Content-Encoding %q", respID.StatusCode, respID.Header.Get("Content-Encoding"))
	}
	if respID.Header.Get("Vary") != "Accept-Encoding" {
		t.Errorf("identity Vary = %q, want Accept-Encoding", respID.Header.Get("Vary"))
	}

	resp1, gz1 := get("gzip", "")
	_, gz2 := get("gzip", "")
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip GET: %d, Content-Encoding %q", resp1.StatusCode, resp1.Header.Get("Content-Encoding"))
	}
	if resp1.Header.Get("Vary") != "Accept-Encoding" {
		t.Errorf("gzip Vary = %q, want Accept-Encoding", resp1.Header.Get("Vary"))
	}
	if !bytes.Equal(gz1, gz2) {
		t.Error("repeated gzip GETs are not byte-identical")
	}
	if cl := resp1.Header.Get("Content-Length"); cl != strconv.Itoa(len(gz1)) {
		t.Errorf("gzip Content-Length = %q, body is %d bytes", cl, len(gz1))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz1))
	if err != nil {
		t.Fatalf("gzip body does not decode: %v", err)
	}
	inflated, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gzip body truncated: %v", err)
	}
	if !bytes.Equal(inflated, plain) {
		t.Error("gzip entity does not decompress to the identity body")
	}

	// One snapshot, one validator: both codings carry the same strong ETag,
	// and it answers 304 for either encoding.
	etag := respID.Header.Get("ETag")
	if etag == "" || resp1.Header.Get("ETag") != etag {
		t.Fatalf("ETags differ across codings: %q vs %q", etag, resp1.Header.Get("ETag"))
	}
	for _, enc := range []string{"identity", "gzip"} {
		resp, body := get(enc, etag)
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("%s conditional GET = %d, want 304", enc, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("%s 304 carried a body", enc)
		}
		if resp.Header.Get("Vary") != "Accept-Encoding" {
			t.Errorf("%s 304 lost Vary", enc)
		}
	}

	// q=0 refuses gzip; the wildcard alone does not opt in.
	for _, refuse := range []string{"gzip;q=0", "*"} {
		if resp, _ := get(refuse, ""); resp.Header.Get("Content-Encoding") != "" {
			t.Errorf("Accept-Encoding %q got Content-Encoding %q, want identity",
				refuse, resp.Header.Get("Content-Encoding"))
		}
	}

	// A write flips the snapshot: the validator stops matching and the new
	// gzip entity differs.
	store.Put(&Profile{Subscription: "z", Cloud: core.Public, MeanUtilization: 0.9, RegionAgnosticScore: -1})
	resp3, gz3 := get("gzip", etag)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-write conditional gzip GET = %d, want 200", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") == etag {
		t.Error("ETag unchanged across a write")
	}
	if bytes.Equal(gz3, gz1) {
		t.Error("gzip entity unchanged across a write")
	}
}

// TestRouteIndexCacheMetadata pins each route's advertised cache class.
func TestRouteIndexCacheMetadata(t *testing.T) {
	srv := httptest.NewServer(NewHandler(snapStore()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var idx RouteIndex
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("index decode: %v", err)
	}
	want := map[string]string{
		"/healthz":              CacheNone,
		"/api/v1/":              CacheContent,
		"/api/v1/version":       CacheContent,
		"/api/v1/summary":       CacheSnapshot,
		"/api/v1/profiles":      CacheSnapshot,
		"/api/v1/profiles/{id}": CacheSnapshot,
	}
	seen := map[string]bool{}
	for _, ri := range idx.Routes {
		if cls, ok := want[ri.Pattern]; ok {
			seen[ri.Pattern] = true
			if ri.Cache != cls {
				t.Errorf("%s: cache class %q, want %q", ri.Pattern, ri.Cache, cls)
			}
		}
	}
	for pattern := range want {
		if !seen[pattern] {
			t.Errorf("route index missing %s", pattern)
		}
	}
}
