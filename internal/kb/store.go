package kb

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"cloudlens/internal/core"
	"cloudlens/internal/obs"
)

// Store metrics, pre-resolved at init. Counts are process-cumulative
// across every store in the binary; the gauge tracks the store written to
// most recently (a server process holds exactly one).
var (
	storePuts = obs.Default.Counter("cloudlens_kb_profile_puts_total",
		"Knowledge-base profile inserts and replacements.")
	storeProfiles = obs.Default.Gauge("cloudlens_kb_profiles",
		"Profiles held by the most recently written knowledge-base store.")
)

// Store is the thread-safe profile repository. Management policies query it
// for workload knowledge; the HTTP handler in this package exposes it to
// other systems.
type Store struct {
	mu       sync.RWMutex
	profiles map[core.SubscriptionID]*Profile
	// version counts writes; snapshot caches (StoreSource) compare it to
	// decide whether a cached immutable view is still current.
	version atomic.Uint64
}

// NewStore returns an empty knowledge base.
func NewStore() *Store {
	return &Store{profiles: make(map[core.SubscriptionID]*Profile)}
}

// Put inserts or replaces a profile.
func (s *Store) Put(p *Profile) {
	s.mu.Lock()
	s.profiles[p.Subscription] = p
	n := len(s.profiles)
	s.mu.Unlock()
	s.version.Add(1)
	storePuts.Inc()
	storeProfiles.SetInt(n)
}

// Version returns the store's write counter. Two equal readings with no
// writes in between guarantee List/Get observed the same profile set.
func (s *Store) Version() uint64 { return s.version.Load() }

// Get returns the profile of one subscription.
func (s *Store) Get(id core.SubscriptionID) (*Profile, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[id]
	return p, ok
}

// Len returns the number of stored profiles.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.profiles)
}

// Query filters profiles. Zero-valued fields match everything.
type Query struct {
	// Cloud restricts to one platform when valid.
	Cloud core.Cloud
	// MinRegionAgnosticScore keeps profiles at or above the score
	// (set to a negative value to disable; 0 keeps all multi-region
	// profiles with non-negative correlation).
	MinRegionAgnosticScore float64
	// Pattern keeps profiles whose dominant pattern matches.
	Pattern core.Pattern
	// MinShortLivedShare keeps churn-heavy subscriptions (spot
	// candidates).
	MinShortLivedShare float64
}

// disabledScore marks MinRegionAgnosticScore as "no filter".
const disabledScore = -2

// Match reports whether one profile satisfies the query.
func (q Query) Match(p *Profile) bool {
	if q.Cloud.Valid() && p.Cloud != q.Cloud {
		return false
	}
	if q.MinRegionAgnosticScore > disabledScore && p.RegionAgnosticScore < q.MinRegionAgnosticScore {
		return false
	}
	if q.Pattern != core.PatternUnknown && p.DominantPattern != q.Pattern {
		return false
	}
	return p.ShortLivedShare >= q.MinShortLivedShare
}

// List returns all profiles matching the query, sorted by subscription ID.
func (s *Store) List(q Query) []*Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Profile
	for _, p := range s.profiles {
		if q.Match(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subscription < out[j].Subscription })
	return out
}

// Summary aggregates the knowledge base per platform.
type Summary struct {
	Cloud             core.Cloud               `json:"cloud"`
	Subscriptions     int                      `json:"subscriptions"`
	VMsObserved       int                      `json:"vmsObserved"`
	SnapshotCores     int                      `json:"snapshotCores"`
	MeanUtilization   float64                  `json:"meanUtilization"`
	PatternShares     map[core.Pattern]float64 `json:"patternShares"`
	RegionAgnostic    int                      `json:"regionAgnostic"`
	MultiRegion       int                      `json:"multiRegion"`
	MedianLifetimeMin float64                  `json:"medianLifetimeMin"`
}

// RegionAgnosticThreshold is the cross-region correlation above which a
// multi-region subscription is considered region-agnostic.
const RegionAgnosticThreshold = 0.8

// Summarize aggregates all profiles of one platform. Profiles are walked
// in subscription order so the floating-point accumulation order — and
// therefore the summary, bit for bit — is a pure function of the stored
// profiles, never of map iteration or insertion order.
func (s *Store) Summarize(cloud core.Cloud) Summary {
	s.mu.RLock()
	list := make([]*Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		list = append(list, p)
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].Subscription < list[j].Subscription })
	return summarizeSorted(cloud, list)
}

// summarizeSorted aggregates one platform's slice of an already
// subscription-sorted profile list — the shared core of Store.Summarize and
// Snapshot.Summarize. The input order fixes the floating-point accumulation
// order, keeping the summary bit-deterministic.
func summarizeSorted(cloud core.Cloud, profiles []*Profile) Summary {
	sum := Summary{
		Cloud:         cloud,
		PatternShares: make(map[core.Pattern]float64),
	}
	var utilSum float64
	var lifetimes []float64
	classifiedSubs := 0
	for _, p := range profiles {
		if p.Cloud != cloud {
			continue
		}
		sum.Subscriptions++
		sum.VMsObserved += p.VMsObserved
		sum.SnapshotCores += p.SnapshotCores
		if p.MeanUtilization > 0 {
			utilSum += p.MeanUtilization
			classifiedSubs++
		}
		for k, v := range p.PatternShares {
			sum.PatternShares[k] += v
		}
		if len(p.Regions) > 1 {
			sum.MultiRegion++
			if p.RegionAgnosticScore >= RegionAgnosticThreshold {
				sum.RegionAgnostic++
			}
		}
		if p.MedianLifetimeMin > 0 {
			lifetimes = append(lifetimes, p.MedianLifetimeMin)
		}
	}
	if classifiedSubs > 0 {
		sum.MeanUtilization = utilSum / float64(classifiedSubs)
		patterns := make([]core.Pattern, 0, len(sum.PatternShares))
		for k := range sum.PatternShares {
			patterns = append(patterns, k)
		}
		sort.Slice(patterns, func(i, j int) bool { return patterns[i] < patterns[j] })
		total := 0.0
		for _, k := range patterns {
			total += sum.PatternShares[k]
		}
		if total > 0 {
			for k := range sum.PatternShares {
				sum.PatternShares[k] /= total
			}
		}
	}
	sort.Float64s(lifetimes)
	if len(lifetimes) > 0 {
		sum.MedianLifetimeMin = lifetimes[len(lifetimes)/2]
	}
	return sum
}

// SaveFile persists the knowledge base as JSON.
func (s *Store) SaveFile(path string) error {
	s.mu.RLock()
	list := make([]*Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		list = append(list, p)
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].Subscription < list[j].Subscription })
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return fmt.Errorf("kb: save: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("kb: save: %w", err)
	}
	return nil
}

// LoadFile reads a knowledge base written by SaveFile.
func LoadFile(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kb: load: %w", err)
	}
	var list []*Profile
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("kb: load: %w", err)
	}
	s := NewStore()
	for _, p := range list {
		s.Put(p)
	}
	return s, nil
}
