package kb

import (
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"testing"

	"cloudlens/internal/core"
)

// FuzzDecodeCursor feeds arbitrary client-supplied cursor tokens through
// the decoder. A cursor is the one opaque value clients echo back
// verbatim, so decoding must never panic, and anything the decoder
// accepts must survive a re-encode round trip (otherwise a walk could
// silently jump position).
func FuzzDecodeCursor(f *testing.F) {
	f.Add(EncodeCursor("micro"))
	f.Add(EncodeCursor(""))
	f.Add("")
	f.Add("not-base64!")
	f.Add("cGxhaW4")          // valid base64, missing the p1: prefix
	f.Add("cDE6bWljcm8=====") // padding where RawURLEncoding allows none
	f.Fuzz(func(t *testing.T, token string) {
		key, err := DecodeCursor(token)
		if err != nil {
			pe, ok := err.(*ParamError)
			if !ok || pe.Code != "bad_cursor" {
				t.Fatalf("DecodeCursor(%q) rejected with %v, want a bad_cursor ParamError", token, err)
			}
			return
		}
		got, err := DecodeCursor(EncodeCursor(key))
		if err != nil || got != key {
			t.Fatalf("accepted cursor %q does not round-trip: key %q re-decoded as %q, %v", token, key, got, err)
		}
	})
}

// FuzzParseListParams drives the strict listing grammar with raw query
// strings, the exact bytes a client puts after the ? — parsing must never
// panic, and every accepted result must be safe to hand to Store.List and
// Paginate: a limit inside [0, MaxPageLimit] and thresholds that actually
// compare (no NaN filter bypass).
func FuzzParseListParams(f *testing.F) {
	f.Add("")
	f.Add("limit=7")
	f.Add("cursor=" + EncodeCursor("s1"))
	f.Add("cloud=private&minAgnostic=0.5&minShortLived=0.25&pattern=" + core.Patterns()[0].String())
	f.Add("minAgnostic=NaN")
	f.Add("minShortLived=+Inf")
	f.Add("limit=1001")
	f.Add("limit=-1&cursor=zzz")
	f.Add("nope=1")
	f.Add("cloud=%zz&limit=2") // malformed percent-escape
	f.Add("limit=2&limit=999") // repeated parameter
	f.Fuzz(func(t *testing.T, rawQuery string) {
		r := &http.Request{URL: &url.URL{RawQuery: rawQuery}}
		q, pg, err := ParseListParams(r)
		if err != nil {
			if _, ok := err.(*ParamError); !ok {
				t.Fatalf("query %q rejected with a non-ParamError %T: %v", rawQuery, err, err)
			}
			return
		}
		if pg.Limit < 0 || pg.Limit > MaxPageLimit {
			t.Fatalf("query %q produced out-of-range limit %d", rawQuery, pg.Limit)
		}
		if math.IsNaN(q.MinRegionAgnosticScore) || math.IsNaN(q.MinShortLivedShare) {
			t.Fatalf("query %q produced a NaN threshold, which disables the filter silently", rawQuery)
		}
	})
}

// TestWriteListParamsCorpus regenerates the checked-in seed corpora for the
// kb fuzz targets. Set CLOUDLENS_WRITE_CORPUS=1 to rewrite testdata.
func TestWriteListParamsCorpus(t *testing.T) {
	if os.Getenv("CLOUDLENS_WRITE_CORPUS") == "" {
		t.Skip("corpus generator; set CLOUDLENS_WRITE_CORPUS=1 to rewrite testdata")
	}
	corpora := map[string]map[string]string{
		"FuzzDecodeCursor": {
			"valid-cursor":   EncodeCursor("micro"),
			"empty-key":      EncodeCursor(""),
			"empty":          "",
			"not-base64":     "not-base64!",
			"missing-prefix": "cGxhaW4",
		},
		"FuzzParseListParams": {
			"empty":         "",
			"paged":         "limit=7&cursor=" + EncodeCursor("s1"),
			"all-filters":   "cloud=private&minAgnostic=0.5&minShortLived=0.25&pattern=" + core.Patterns()[0].String(),
			"nan-threshold": "minAgnostic=NaN",
			"over-limit":    "limit=1001",
			"unknown-param": "nope=1",
		},
	}
	for fuzzName, entries := range corpora {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, s := range entries {
			content := fmt.Sprintf("go test fuzz v1\nstring(%q)\n", s)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
