package kb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"cloudlens/internal/core"
	"cloudlens/internal/trace"
	"cloudlens/internal/workload"
)

var (
	kbOnce  sync.Once
	kbTrace *trace.Trace
	kbStore *Store
	kbErr   error
)

// sharedKB extracts one knowledge base for the whole test package.
func sharedKB(t *testing.T) (*trace.Trace, *Store) {
	t.Helper()
	kbOnce.Do(func() {
		cfg := workload.DefaultConfig(21)
		cfg.Scale = 0.5
		kbTrace, kbErr = workload.Generate(cfg)
		if kbErr == nil {
			kbStore = Extract(kbTrace, ExtractOptions{})
		}
	})
	if kbErr != nil {
		t.Fatalf("build shared kb: %v", kbErr)
	}
	return kbTrace, kbStore
}

func TestExtractCoversAllSubscriptions(t *testing.T) {
	tr, store := sharedKB(t)
	subs := make(map[core.SubscriptionID]bool)
	for i := range tr.VMs {
		subs[tr.VMs[i].Subscription] = true
	}
	if store.Len() != len(subs) {
		t.Fatalf("store has %d profiles, trace has %d subscriptions", store.Len(), len(subs))
	}
}

func TestProfileContents(t *testing.T) {
	_, store := sharedKB(t)
	p, ok := store.Get("prv-sub-servicex")
	if !ok {
		t.Fatal("ServiceX subscription missing from the knowledge base")
	}
	if p.Cloud != core.Private {
		t.Fatalf("ServiceX cloud = %v", p.Cloud)
	}
	if len(p.Regions) < 5 {
		t.Fatalf("ServiceX regions = %v", p.Regions)
	}
	if p.RegionAgnosticScore < RegionAgnosticThreshold {
		t.Fatalf("ServiceX region-agnostic score %.2f below threshold", p.RegionAgnosticScore)
	}
	if p.DominantPattern != core.PatternHourlyPeak && p.DominantPattern != core.PatternDiurnal {
		t.Fatalf("ServiceX dominant pattern = %v", p.DominantPattern)
	}
	if p.MeanUtilization <= 0 || p.MeanUtilization >= 1 {
		t.Fatalf("mean utilization = %v", p.MeanUtilization)
	}
	if p.PeakHourUTC < 0 || p.PeakHourUTC > 23 {
		t.Fatalf("peak hour = %d", p.PeakHourUTC)
	}
}

func TestProfileShortLivedSignal(t *testing.T) {
	_, store := sharedKB(t)
	// Public subscriptions in aggregate must show a much higher
	// short-lived share than private ones.
	var privSum, pubSum float64
	var privN, pubN int
	for _, p := range store.List(Query{MinRegionAgnosticScore: disabledScore}) {
		if p.MedianLifetimeMin == 0 {
			continue
		}
		if p.Cloud == core.Private {
			privSum += p.ShortLivedShare
			privN++
		} else {
			pubSum += p.ShortLivedShare
			pubN++
		}
	}
	if privN == 0 || pubN == 0 {
		t.Fatal("no lifetime data in profiles")
	}
	if pubSum/float64(pubN) <= privSum/float64(privN) {
		t.Fatalf("public short-lived share %.2f not above private %.2f",
			pubSum/float64(pubN), privSum/float64(privN))
	}
}

func TestStoreQueryFilters(t *testing.T) {
	_, store := sharedKB(t)
	all := store.List(Query{MinRegionAgnosticScore: disabledScore})
	if len(all) != store.Len() {
		t.Fatalf("unfiltered list = %d, want %d", len(all), store.Len())
	}
	private := store.List(Query{Cloud: core.Private, MinRegionAgnosticScore: disabledScore})
	for _, p := range private {
		if p.Cloud != core.Private {
			t.Fatal("cloud filter leaked")
		}
	}
	agnostic := store.List(Query{MinRegionAgnosticScore: RegionAgnosticThreshold})
	if len(agnostic) == 0 {
		t.Fatal("no region-agnostic profiles found")
	}
	for _, p := range agnostic {
		if p.RegionAgnosticScore < RegionAgnosticThreshold {
			t.Fatal("score filter leaked")
		}
	}
	// Sorted output.
	for i := 1; i < len(all); i++ {
		if all[i].Subscription < all[i-1].Subscription {
			t.Fatal("list not sorted")
		}
	}
}

func TestSummarize(t *testing.T) {
	_, store := sharedKB(t)
	priv := store.Summarize(core.Private)
	pub := store.Summarize(core.Public)
	if priv.Subscriptions == 0 || pub.Subscriptions == 0 {
		t.Fatal("empty summaries")
	}
	if pub.Subscriptions < 5*priv.Subscriptions {
		t.Fatalf("public %d vs private %d subscriptions", pub.Subscriptions, priv.Subscriptions)
	}
	if priv.RegionAgnostic == 0 {
		t.Fatal("no region-agnostic private subscriptions in summary")
	}
	total := 0.0
	for _, v := range priv.PatternShares {
		total += v
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("private pattern shares sum to %v", total)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, store := sharedKB(t)
	path := filepath.Join(t.TempDir(), "kb.json")
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("loaded %d profiles, want %d", loaded.Len(), store.Len())
	}
	p1, _ := store.Get("prv-sub-servicex")
	p2, ok := loaded.Get("prv-sub-servicex")
	if !ok || p2.RegionAgnosticScore != p1.RegionAgnosticScore {
		t.Fatal("profile contents changed across save/load")
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, store := sharedKB(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPSummary(t *testing.T) {
	_, store := sharedKB(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]Summary
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out["private"].Subscriptions == 0 || out["public"].Subscriptions == 0 {
		t.Fatalf("summary payload incomplete: %+v", out)
	}
}

func TestHTTPProfiles(t *testing.T) {
	_, store := sharedKB(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	t.Run("list with filters", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/api/v1/profiles?cloud=private&minAgnostic=0.8")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var profiles []*Profile
		if err := json.NewDecoder(resp.Body).Decode(&profiles); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(profiles) == 0 {
			t.Fatal("no region-agnostic private profiles over HTTP")
		}
		for _, p := range profiles {
			if p.Cloud != core.Private || p.RegionAgnosticScore < 0.8 {
				t.Fatalf("filter violated: %+v", p)
			}
		}
	})

	t.Run("single profile", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/api/v1/profiles/prv-sub-servicex")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var p Profile
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if p.Subscription != "prv-sub-servicex" {
			t.Fatalf("wrong profile: %s", p.Subscription)
		}
	})

	t.Run("not found", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/api/v1/profiles/ghost")
		if err != nil {
			t.Fatal(err)
		}
		env := decodeEnvelope(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
		if env.Error.Code != "not_found" {
			t.Errorf("envelope code %q, want not_found", env.Error.Code)
		}
	})

	t.Run("bad parameter", func(t *testing.T) {
		for _, q := range []string{"cloud=mars", "minAgnostic=abc", "pattern=wavy", "minShortLived=x"} {
			resp, err := http.Get(srv.URL + "/api/v1/profiles?" + q)
			if err != nil {
				t.Fatal(err)
			}
			env := decodeEnvelope(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("query %q: status %d, want 400", q, resp.StatusCode)
			}
			if env.Error.Code != "bad_param" || env.Error.Message == "" {
				t.Errorf("query %q: envelope = %+v", q, env)
			}
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/api/v1/profiles", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		env := decodeEnvelope(t, resp)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
		if env.Error.Code != "method_not_allowed" {
			t.Errorf("envelope code %q, want method_not_allowed", env.Error.Code)
		}
		if resp.Header.Get("Allow") == "" {
			t.Error("405 lost the Allow header")
		}
	})

	t.Run("unknown path", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/api/v2/profiles")
		if err != nil {
			t.Fatal(err)
		}
		env := decodeEnvelope(t, resp)
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
			t.Errorf("status %d envelope %+v, want enveloped 404", resp.StatusCode, env)
		}
	})
}

// decodeEnvelope reads an error response body as the uniform JSON envelope.
func decodeEnvelope(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var env ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v", err)
	}
	return env
}

func TestHTTPVersion(t *testing.T) {
	_, store := sharedKB(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version status %d", resp.StatusCode)
	}
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if v.Module == "" || v.GoVersion == "" {
		t.Errorf("version payload incomplete: %+v", v)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	store := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				id := core.SubscriptionID(rune('a' + n))
				store.Put(&Profile{Subscription: id, Cloud: core.Private})
				store.Get(id)
				store.List(Query{MinRegionAgnosticScore: disabledScore})
				store.Summarize(core.Private)
			}
		}(i)
	}
	wg.Wait()
	if store.Len() != 8 {
		t.Fatalf("store has %d profiles, want 8", store.Len())
	}
}
