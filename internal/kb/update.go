package kb

import "cloudlens/internal/core"

// The paper's Section V envisions a knowledge base that "continuously
// extracts workload knowledge from telemetry signals" — knowledge must be
// refreshed as new observation windows arrive, without forgetting
// established behaviour on a single noisy week. Merge implements that
// continuous update as an exponentially weighted blend of profile
// statistics.

// MergeOptions tunes the continuous update.
type MergeOptions struct {
	// NewWeight is the weight of the incoming observation window in
	// [0, 1]; the existing knowledge keeps 1-NewWeight (default 0.3,
	// a slow-moving EWMA).
	NewWeight float64
}

func (o MergeOptions) withDefaults() MergeOptions {
	if o.NewWeight == 0 {
		o.NewWeight = 0.3
	}
	if o.NewWeight < 0 {
		o.NewWeight = 0
	}
	if o.NewWeight > 1 {
		o.NewWeight = 1
	}
	return o
}

// Merge folds a newer extraction into the store. Subscriptions present
// only in the update are inserted as-is; subscriptions present only in the
// existing store are retained unchanged (a missing week does not erase
// knowledge); overlapping subscriptions blend numerically and union their
// region and service sets.
func (s *Store) Merge(update *Store, opts MergeOptions) {
	opts = opts.withDefaults()
	w := opts.NewWeight
	for _, newP := range update.List(Query{MinRegionAgnosticScore: disabledScore}) {
		old, ok := s.Get(newP.Subscription)
		if !ok {
			clone := *newP
			s.Put(&clone)
			continue
		}
		merged := blendProfiles(old, newP, w)
		s.Put(merged)
	}
}

// blendProfiles combines two observations of the same subscription.
func blendProfiles(prev, next *Profile, w float64) *Profile {
	out := &Profile{
		Subscription: prev.Subscription,
		Cloud:        next.Cloud,
		Services:     unionSorted(prev.Services, next.Services),
		Regions:      unionSorted(prev.Regions, next.Regions),
		// Counters describe the latest window.
		VMsObserved:   next.VMsObserved,
		SnapshotVMs:   next.SnapshotVMs,
		SnapshotCores: next.SnapshotCores,
		// Behavioural statistics blend.
		MedianLifetimeMin: blend(prev.MedianLifetimeMin, next.MedianLifetimeMin, w),
		ShortLivedShare:   blend(prev.ShortLivedShare, next.ShortLivedShare, w),
		MeanUtilization:   blend(prev.MeanUtilization, next.MeanUtilization, w),
		PatternShares:     make(map[core.Pattern]float64),
		PeakHourUTC:       next.PeakHourUTC,
	}
	if out.PeakHourUTC < 0 {
		out.PeakHourUTC = prev.PeakHourUTC
	}
	// Region-agnostic scores blend only when both are defined (-1 means
	// single-region / unknown).
	switch {
	case prev.RegionAgnosticScore < 0:
		out.RegionAgnosticScore = next.RegionAgnosticScore
	case next.RegionAgnosticScore < 0:
		out.RegionAgnosticScore = prev.RegionAgnosticScore
	default:
		out.RegionAgnosticScore = blend(prev.RegionAgnosticScore, next.RegionAgnosticScore, w)
	}
	keys := make(map[core.Pattern]bool)
	for k := range prev.PatternShares {
		keys[k] = true
	}
	for k := range next.PatternShares {
		keys[k] = true
	}
	best := core.PatternUnknown
	for k := range keys {
		out.PatternShares[k] = blend(prev.PatternShares[k], next.PatternShares[k], w)
		if best == core.PatternUnknown || out.PatternShares[k] > out.PatternShares[best] {
			best = k
		}
	}
	out.DominantPattern = best
	return out
}

func blend(prev, next, w float64) float64 {
	if prev == 0 {
		return next
	}
	if next == 0 {
		return prev
	}
	return (1-w)*prev + w*next
}

func unionSorted(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	return sortedKeys(set)
}
