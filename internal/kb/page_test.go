package kb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	for _, key := range []string{"", "sub-1", "prv/sub with spaces+%"} {
		got, err := DecodeCursor(EncodeCursor(key))
		if err != nil || got != key {
			t.Errorf("round-trip %q: got %q, %v", key, got, err)
		}
	}
	for _, bad := range []string{"not-base64!", "cGxhaW4", ""} {
		if _, err := DecodeCursor(bad); err == nil {
			t.Errorf("DecodeCursor(%q) accepted", bad)
		}
	}
}

func TestPaginate(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	ident := func(s string) string { return s }

	page, err := Paginate(items, ident, Page{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := page.Items.([]string); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("first page %v", got)
	}
	if page.Total != 5 || page.NextCursor == "" {
		t.Fatalf("first page envelope: %+v", page)
	}

	// Follow the cursor to the end; the walk must be exhaustive and
	// duplicate-free.
	var walked []string
	pg := Page{Limit: 2}
	for {
		p, err := Paginate(items, ident, pg)
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, p.Items.([]string)...)
		if p.NextCursor == "" {
			break
		}
		pg.Cursor = p.NextCursor
	}
	if fmt.Sprint(walked) != fmt.Sprint(items) {
		t.Errorf("cursor walk got %v, want %v", walked, items)
	}

	// A cursor past the last key yields an empty page that encodes as
	// items: [], not null.
	end, err := Paginate(items, ident, Page{Limit: 2, Cursor: EncodeCursor("zzz")})
	if err != nil {
		t.Fatal(err)
	}
	if got := end.Items.([]string); len(got) != 0 || got == nil {
		t.Errorf("past-the-end page items = %#v, want empty non-nil", got)
	}
	if end.NextCursor != "" {
		t.Errorf("past-the-end page still has a cursor %q", end.NextCursor)
	}

	if _, err := Paginate(items, ident, Page{Cursor: "garbage!"}); err == nil {
		t.Error("garbage cursor accepted")
	}
}

// TestPaginateEdges pins the keyset boundaries: a limit landing exactly on
// the last item, a cursor naming a key that was deleted between pages, and
// a cursor equal to the final key.
func TestPaginateEdges(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	ident := func(s string) string { return s }

	// Limit exactly covering the remainder must not issue a cursor that
	// would lead to a guaranteed-empty extra round trip.
	exact, err := Paginate(items, ident, Page{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.Items.([]string); len(got) != 5 || exact.NextCursor != "" {
		t.Errorf("limit==len page: %d items, cursor %q; want 5 items and no cursor", len(got), exact.NextCursor)
	}

	// One short of the boundary must still page.
	almost, err := Paginate(items, ident, Page{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := almost.Items.([]string); len(got) != 4 || almost.NextCursor == "" {
		t.Errorf("limit==len-1 page: %d items, cursor %q; want 4 items and a cursor", len(got), almost.NextCursor)
	}

	// A cursor for a key deleted since the last page resumes at the next
	// surviving key — no skip, no duplicate.
	after, err := Paginate([]string{"a", "b", "d", "e"}, ident, Page{Limit: 2, Cursor: EncodeCursor("c")})
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Items.([]string); len(got) != 2 || got[0] != "d" || got[1] != "e" {
		t.Errorf("deleted-key cursor resumed at %v, want [d e]", got)
	}

	// A cursor naming the final key yields the empty terminal page.
	fin, err := Paginate(items, ident, Page{Limit: 2, Cursor: EncodeCursor("e")})
	if err != nil {
		t.Fatal(err)
	}
	if got := fin.Items.([]string); len(got) != 0 || fin.NextCursor != "" {
		t.Errorf("final-key cursor page: %v cursor %q, want empty and no cursor", got, fin.NextCursor)
	}
}

// TestPaginateUnderConcurrentIngestion walks a cursor while the listing
// fills in underneath it, the live-route scenario. Keyset semantics promise
// the walk never duplicates a key and never skips a key that existed when
// the walk started; keys inserted ahead of the cursor appear exactly once.
func TestPaginateUnderConcurrentIngestion(t *testing.T) {
	ident := func(s string) string { return s }
	// Even keys exist up front; odd keys stream in between pages.
	var items []string
	for i := 0; i < 20; i += 2 {
		items = append(items, fmt.Sprintf("k%03d", i))
	}
	initial := append([]string(nil), items...)

	insertAt := 1
	var walked []string
	pg := Page{Limit: 3}
	for {
		p, err := Paginate(items, ident, pg)
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, p.Items.([]string)...)
		if p.NextCursor == "" {
			break
		}
		pg.Cursor = p.NextCursor
		// Between pages, a new odd key lands in sorted position.
		key := fmt.Sprintf("k%03d", insertAt)
		insertAt += 2
		at := sort.SearchStrings(items, key)
		items = append(items[:at], append([]string{key}, items[at:]...)...)
	}

	seen := map[string]int{}
	for i, k := range walked {
		seen[k]++
		if i > 0 && walked[i] <= walked[i-1] {
			t.Fatalf("walk not strictly increasing at %d: %q after %q", i, walked[i], walked[i-1])
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("key %q delivered %d times", k, n)
		}
	}
	for _, k := range initial {
		if seen[k] == 0 {
			t.Errorf("key %q existed before the walk started but was never delivered", k)
		}
	}
}

// TestParseFiltersRejectsNaN pins a fuzz-found filter bypass: ParseFloat
// accepts "NaN", and a NaN threshold fails every comparison in Store.List,
// so minShortLived=NaN silently returned the entire unfiltered listing to a
// client who asked for churn-heavy subscriptions only.
func TestParseFiltersRejectsNaN(t *testing.T) {
	for _, query := range []string{"minAgnostic=NaN", "minShortLived=nan", "minShortLived=-NAN"} {
		r := httptest.NewRequest(http.MethodGet, "/api/v1/profiles?"+query, nil)
		if _, _, err := ParseListParams(r); err == nil {
			t.Errorf("ParseListParams accepted %q", query)
		}
	}
	// Infinities stay legal: they order cleanly against every score.
	r := httptest.NewRequest(http.MethodGet, "/api/v1/profiles?minShortLived=0.5&minAgnostic=-0.25", nil)
	if _, _, err := ParseListParams(r); err != nil {
		t.Errorf("ParseListParams rejected ordinary thresholds: %v", err)
	}
}

// TestHTTPProfilesPagination drives the paginated envelope end to end:
// a limit-bounded cursor walk over /api/v1/profiles must reassemble
// exactly the unpaginated listing, and the strict parameter grammar must
// reject what it does not know.
func TestHTTPProfilesPagination(t *testing.T) {
	_, store := sharedKB(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	var all []*Profile
	resp, err := http.Get(srv.URL + "/api/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatalf("decode unpaginated: %v", err)
	}
	resp.Body.Close()
	if len(all) < 10 {
		t.Fatalf("shared kb too small for a pagination walk: %d profiles", len(all))
	}

	type pageResp struct {
		Items      []*Profile `json:"items"`
		NextCursor string     `json:"next_cursor"`
		Total      int        `json:"total"`
	}
	var walked []*Profile
	cursor := ""
	pages := 0
	for {
		u := srv.URL + "/api/v1/profiles?limit=7"
		if cursor != "" {
			u += "&cursor=" + cursor
		}
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: status %d", pages, resp.StatusCode)
		}
		var p pageResp
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatalf("page %d: decode: %v", pages, err)
		}
		resp.Body.Close()
		if p.Total != len(all) {
			t.Fatalf("page %d: total %d, want %d", pages, p.Total, len(all))
		}
		if len(p.Items) > 7 {
			t.Fatalf("page %d: %d items exceed the limit", pages, len(p.Items))
		}
		walked = append(walked, p.Items...)
		pages++
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}
	if want := (len(all) + 6) / 7; pages != want {
		t.Errorf("walk took %d pages, want %d", pages, want)
	}
	if len(walked) != len(all) {
		t.Fatalf("walk collected %d profiles, want %d", len(walked), len(all))
	}
	for i := range all {
		if walked[i].Subscription != all[i].Subscription {
			t.Fatalf("page walk diverged at %d: %s vs %s", i, walked[i].Subscription, all[i].Subscription)
		}
		if i > 0 && walked[i].Subscription <= walked[i-1].Subscription {
			t.Fatalf("page walk not strictly increasing at %d: %s after %s",
				i, walked[i].Subscription, walked[i-1].Subscription)
		}
	}

	// Filters compose with paging inside one envelope.
	resp, err = http.Get(srv.URL + "/api/v1/profiles?cloud=private&limit=3")
	if err != nil {
		t.Fatal(err)
	}
	var filtered pageResp
	if err := json.NewDecoder(resp.Body).Decode(&filtered); err != nil {
		t.Fatalf("decode filtered page: %v", err)
	}
	resp.Body.Close()
	for _, p := range filtered.Items {
		if p.Cloud.String() != "private" {
			t.Fatalf("filtered page leaked %s profile %s", p.Cloud, p.Subscription)
		}
	}

	for _, tc := range []struct {
		query, code string
	}{
		{"limit=0", "bad_param"},
		{"limit=" + strconv.Itoa(MaxPageLimit+1), "bad_param"},
		{"limit=abc", "bad_param"},
		{"cursor=garbage!", "bad_cursor"},
		{"limit=5&nope=1", "unknown_param"},
		{"Cloud=private", "unknown_param"}, // parameter names are case-sensitive
	} {
		resp, err := http.Get(srv.URL + "/api/v1/profiles?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		env := decodeEnvelope(t, resp)
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != tc.code {
			t.Errorf("query %q: status %d code %q, want 400 %s", tc.query, resp.StatusCode, env.Error.Code, tc.code)
		}
	}
}

// TestHTTPRouteIndex pins the discovery contract: GET /api/v1/ lists
// every mounted route with its parameter grammar, and stays an exact
// match (deeper unknown paths remain enveloped 404s).
func TestHTTPRouteIndex(t *testing.T) {
	_, store := sharedKB(t)
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	var idx RouteIndex
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("decode index: %v", err)
	}

	byPattern := map[string]RouteInfo{}
	for _, ri := range idx.Routes {
		if ri.Method == "" || ri.Pattern == "" || ri.Doc == "" {
			t.Errorf("incomplete route row: %+v", ri)
		}
		byPattern[ri.Pattern] = ri
	}
	for _, want := range []string{"/healthz", "/api/v1/", "/api/v1/version", "/api/v1/summary",
		"/api/v1/profiles", "/api/v1/profiles/{id}"} {
		if _, ok := byPattern[want]; !ok {
			t.Errorf("route index missing %s (have %v)", want, keysOf(byPattern))
		}
	}
	profiles := byPattern["/api/v1/profiles"]
	params := map[string]bool{}
	for _, p := range profiles.Params {
		params[p.Name] = true
	}
	for _, want := range listParamNames {
		if !params[want] {
			t.Errorf("profiles route does not document parameter %s", want)
		}
	}

	// {$} keeps the index an exact match.
	resp404, err := http.Get(srv.URL + "/api/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	env := decodeEnvelope(t, resp404)
	if resp404.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
		t.Errorf("/api/v1/nope: status %d envelope %+v", resp404.StatusCode, env)
	}
}

func keysOf(m map[string]RouteInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
