package kb

import (
	"strings"
	"testing"

	"cloudlens/internal/core"
)

func snapStore() *Store {
	s := NewStore()
	s.Put(&Profile{Subscription: "b", Cloud: core.Public, MeanUtilization: 0.4, RegionAgnosticScore: -1})
	s.Put(&Profile{Subscription: "a", Cloud: core.Private, MeanUtilization: 0.3, RegionAgnosticScore: 0.9})
	s.Put(&Profile{Subscription: "c", Cloud: core.Private, MeanUtilization: 0.5, RegionAgnosticScore: -1})
	return s
}

func TestMatchAllIncludesNegativeScores(t *testing.T) {
	// The zero Query filters out single-region profiles whose
	// RegionAgnosticScore is the -1 sentinel; MatchAll must not.
	s := snapStore()
	if got := len(s.List(Query{})); got == 3 {
		t.Skip("zero Query no longer filters; MatchAll redundant but harmless")
	}
	if got := len(s.List(MatchAll())); got != 3 {
		t.Errorf("MatchAll lists %d of 3 profiles", got)
	}
}

func TestSnapshotContents(t *testing.T) {
	sn := NewSnapshot(snapStore(), 12, 3)
	if sn.Step() != 12 || sn.Seq() != 3 || sn.Len() != 3 {
		t.Errorf("snapshot identity = step %d seq %d len %d", sn.Step(), sn.Seq(), sn.Len())
	}
	// Profiles come back sorted by subscription for deterministic
	// iteration.
	ps := sn.Profiles()
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Subscription >= ps[i].Subscription {
			t.Errorf("profiles unsorted: %s before %s", ps[i-1].Subscription, ps[i].Subscription)
		}
	}
	if p, ok := sn.Get("a"); !ok || p.Cloud != core.Private {
		t.Errorf("Get(a) = %+v, %v", p, ok)
	}
	if _, ok := sn.Get("ghost"); ok {
		t.Error("Get(ghost) found a profile")
	}
	// Nil-store snapshots are empty, not nil.
	empty := NewSnapshot(nil, 0, 0)
	if empty.Len() != 0 || empty.Profiles() == nil {
		t.Errorf("nil-store snapshot = %+v", empty)
	}
}

func TestSnapshotFingerprint(t *testing.T) {
	fp := NewSnapshot(snapStore(), 12, 3).Fingerprint()
	if !strings.HasPrefix(fp, "fnv1a:") || len(fp) != len("fnv1a:")+16 {
		t.Fatalf("fingerprint format = %q", fp)
	}
	// Same contents ⇒ same fingerprint, regardless of step/seq labels and
	// insertion order.
	s2 := NewStore()
	s2.Put(&Profile{Subscription: "c", Cloud: core.Private, MeanUtilization: 0.5, RegionAgnosticScore: -1})
	s2.Put(&Profile{Subscription: "a", Cloud: core.Private, MeanUtilization: 0.3, RegionAgnosticScore: 0.9})
	s2.Put(&Profile{Subscription: "b", Cloud: core.Public, MeanUtilization: 0.4, RegionAgnosticScore: -1})
	if got := NewSnapshot(s2, 99, 7).Fingerprint(); got != fp {
		t.Errorf("fingerprint depends on labels or order: %q != %q", got, fp)
	}
	// Different contents ⇒ different fingerprint.
	s3 := snapStore()
	s3.Put(&Profile{Subscription: "a", Cloud: core.Private, MeanUtilization: 0.31, RegionAgnosticScore: 0.9})
	if got := NewSnapshot(s3, 12, 3).Fingerprint(); got == fp {
		t.Error("fingerprint ignored a profile change")
	}
	// Fingerprint is stable across calls (computed once).
	sn := NewSnapshot(snapStore(), 12, 3)
	if sn.Fingerprint() != sn.Fingerprint() {
		t.Error("fingerprint not stable")
	}
}
