package kb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cloudlens/internal/core"
)

func TestStoreSourceCachesUntilWrite(t *testing.T) {
	store := snapStore()
	clockCalls := 0
	clock := func() time.Time {
		clockCalls++
		return time.Unix(int64(1700000000+clockCalls), 0)
	}
	src := NewStoreSource(store, 12, clock)

	first := src.Snapshot()
	if first.Step() != 12 || first.Len() != 3 {
		t.Fatalf("snapshot = step %d len %d", first.Step(), first.Len())
	}
	// Static store ⇒ the very same snapshot, not an equal rebuild: every
	// memoized payload and the fingerprint are shared across requests.
	if src.Snapshot() != first || src.Snapshot() != first {
		t.Error("snapshot rebuilt without a write")
	}
	if clockCalls != 1 {
		t.Errorf("clock consulted %d times for one build", clockCalls)
	}

	store.Put(&Profile{Subscription: "d", Cloud: core.Public, MeanUtilization: 0.6, RegionAgnosticScore: -1})
	second := src.Snapshot()
	if second == first {
		t.Fatal("write not observed: cached snapshot still served")
	}
	if second.Len() != 4 {
		t.Errorf("rebuilt snapshot has %d profiles, want 4", second.Len())
	}
	if second.Seq() <= first.Seq() {
		t.Errorf("sequence did not advance: %d then %d", first.Seq(), second.Seq())
	}
	if !second.PublishedAt().After(first.PublishedAt()) {
		t.Errorf("publish time did not advance: %v then %v", first.PublishedAt(), second.PublishedAt())
	}
	if src.Snapshot() != second {
		t.Error("snapshot rebuilt again without a write")
	}
}

func TestFoldSourcePublishesAtFoldBoundaries(t *testing.T) {
	src := NewFoldSource(nil)

	// Unbound: serves an empty snapshot rather than nil.
	if sn := src.Snapshot(); sn == nil || sn.Len() != 0 {
		t.Fatalf("unbound snapshot = %v", sn)
	}

	store := snapStore()
	src.Bind(store)
	src.FoldBegin()
	src.FoldPublished(7)

	sn := src.Snapshot()
	if sn.Step() != 7 || sn.Len() != 3 {
		t.Fatalf("published snapshot = step %d len %d", sn.Step(), sn.Len())
	}
	if src.Snapshot() != sn {
		t.Error("snapshot rebuilt between folds")
	}

	// The next fold rewrites the store; readers must never see the new
	// contents under the old snapshot identity.
	src.FoldBegin()
	store.Put(&Profile{Subscription: "d", Cloud: core.Public, MeanUtilization: 0.6, RegionAgnosticScore: -1})
	src.FoldPublished(8)

	next := src.Snapshot()
	if next == sn {
		t.Fatal("fold publication not observed")
	}
	if next.Step() != 8 || next.Len() != 4 {
		t.Errorf("post-fold snapshot = step %d len %d", next.Step(), next.Len())
	}
	// The old snapshot is immutable: it still lists 3 profiles.
	if sn.Len() != 3 {
		t.Errorf("old snapshot mutated: %d profiles", sn.Len())
	}
}

func TestFoldSourceConcurrentReadsDuringFolds(t *testing.T) {
	store := snapStore()
	src := NewFoldSource(nil)
	src.Bind(store)
	src.FoldBegin()
	src.FoldPublished(0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			src.FoldBegin()
			store.Put(&Profile{Subscription: core.SubscriptionID(fmt.Sprintf("sub-%02d", i%20)), Cloud: core.Private,
				MeanUtilization: float64(i%100) / 100, RegionAgnosticScore: -1})
			src.FoldPublished(i + 1)
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sn := src.Snapshot()
				// Each observed snapshot must be internally consistent:
				// the fingerprint memoized at first use still describes the
				// profile list on every later read.
				if fp := sn.Fingerprint(); fp != sn.Fingerprint() {
					t.Error("fingerprint unstable")
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()

	// After the final fold the source converges on the store's contents.
	if got, want := src.Snapshot().Len(), len(store.List(MatchAll())); got != want {
		t.Errorf("final snapshot has %d profiles, store has %d", got, want)
	}
}

func TestSummarizeComputesAtMostOncePerCloud(t *testing.T) {
	sn := NewSnapshot(snapStore(), 0, 1)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sn.Summarize(core.Private)
				sn.Summarize(core.Public)
			}
		}()
	}
	wg.Wait()
	// This is the regression the snapshot read path exists for: the old
	// handler recomputed the summary under the store lock on every GET.
	if n := sn.SummarizeComputes(); n > 2 {
		t.Errorf("summary computed %d times for 2 clouds", n)
	}
}

func TestSnapshotMemoComputesOnce(t *testing.T) {
	sn := NewSnapshot(snapStore(), 0, 1)
	calls := 0
	compute := func() interface{} { calls++; return []byte("payload") }
	a := sn.Memo("test.key", compute)
	b := sn.Memo("test.key", compute)
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
	if &a.([]byte)[0] != &b.([]byte)[0] {
		t.Error("memo returned different values")
	}
	// Distinct keys do not collide.
	sn.Memo("test.other", func() interface{} { return 42 })
	if got := sn.Memo("test.key", compute).([]byte); string(got) != "payload" {
		t.Errorf("memo overwritten: %q", got)
	}
}
