package kb

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cloudlens/internal/obs"
)

// notModified counts conditional GETs answered 304 — the reads the
// snapshot identity let the server skip entirely.
var notModified = obs.Default.Counter("cloudlens_http_not_modified_total",
	"Conditional requests answered 304 Not Modified from snapshot validators.")

// etagMatches implements the If-None-Match comparison of RFC 9110 §13.1.2:
// a "*" matches any current representation, and listed tags compare weakly
// (a W/ prefix on either side is ignored) — the correct semantics for a
// cache-validation GET.
func etagMatches(header, etag string) bool {
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == strings.TrimPrefix(etag, "W/") {
			return true
		}
	}
	return false
}

// checkConditional applies the request's validators against the response's
// ETag and modification time, answering 304 (empty body, validators
// attached) when the client's copy is current. It returns true when the
// response is complete and the handler must not write a body. etag must be
// a quoted entity tag; modified may be zero to disable If-Modified-Since.
//
// Precedence follows RFC 9110: when If-None-Match is present it decides
// alone and If-Modified-Since is ignored.
func checkConditional(w http.ResponseWriter, r *http.Request, etag string, modified time.Time) bool {
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	if !modified.IsZero() {
		w.Header().Set("Last-Modified", modified.UTC().Format(http.TimeFormat))
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return false
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if etag != "" && etagMatches(inm, etag) {
			writeNotModified(w)
			return true
		}
		return false
	}
	if ims := r.Header.Get("If-Modified-Since"); ims != "" && !modified.IsZero() {
		if since, err := http.ParseTime(ims); err == nil {
			// The header carries second resolution; truncate before
			// comparing or every response within the same second misses.
			if !modified.Truncate(time.Second).After(since) {
				writeNotModified(w)
				return true
			}
		}
	}
	return false
}

func writeNotModified(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNotModified)
	notModified.Inc()
}

// WriteSnapshotJSON writes v as the snapshot's representation: the
// snapshot fingerprint becomes the ETag, its publish time Last-Modified,
// and a request whose If-None-Match / If-Modified-Since validators still
// hold is answered 304 with no body. Every snapshot-backed v1 GET funnels
// through here (or WriteSnapshotRaw), which is what makes "same snapshot ⇒
// same ETag ⇒ byte-identical body" a route-table-wide invariant.
func WriteSnapshotJSON(w http.ResponseWriter, r *http.Request, sn *Snapshot, v interface{}) {
	if checkConditional(w, r, sn.ETag(), sn.PublishedAt()) {
		return
	}
	WriteJSON(w, http.StatusOK, v)
}

// acceptsGzip reports whether the request's Accept-Encoding explicitly
// lists gzip (or its x-gzip alias) with a nonzero q-value, per RFC 9110
// §12.5.3. The absence of the header, a wildcard, and malformed members
// all answer false: identity is always an acceptable default, so the
// conservative reading never produces an unreadable response.
func acceptsGzip(r *http.Request) bool {
	for _, member := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(member, ";")
		coding = strings.ToLower(strings.TrimSpace(coding))
		if coding != "gzip" && coding != "x-gzip" {
			continue
		}
		params = strings.TrimSpace(params)
		if q, ok := strings.CutPrefix(params, "q="); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err != nil || f <= 0 {
				return false
			}
		}
		return true
	}
	return false
}

// gzipMemo returns body gzip-compressed, computing (and memoizing) the
// encoded form once per snapshot under "gzip:"+key. compress/gzip with a
// zero-valued header is deterministic for a given input, so repeated
// requests — and separate servers publishing identical snapshots — serve
// byte-identical gzip entities, preserving the fingerprint⇒bytes
// invariant the strong ETag relies on.
func gzipMemo(sn *Snapshot, key string, body []byte) []byte {
	return sn.Memo("gzip:"+key, func() interface{} {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		_, _ = zw.Write(body)
		_ = zw.Close()
		return buf.Bytes()
	}).([]byte)
}

// WriteSnapshotRaw is WriteSnapshotJSON for payloads already encoded (and
// memoized) on the snapshot: aggregation endpoints serve their bytes with
// zero per-request encoding work. key names the payload on the snapshot's
// memo space; a request accepting gzip is answered with the gzip entity,
// compressed once per snapshot and memoized under "gzip:"+key. Both
// encodings share the snapshot's validators — the ETag identifies the
// snapshot content and Vary: Accept-Encoding keys caches per coding — so
// conditional requests short-circuit to 304 identically either way.
func WriteSnapshotRaw(w http.ResponseWriter, r *http.Request, sn *Snapshot, key string, body []byte) {
	// Vary must accompany every response on this resource, 304s included,
	// so caches key the stored representation by requested coding.
	w.Header().Add("Vary", "Accept-Encoding")
	if checkConditional(w, r, sn.ETag(), sn.PublishedAt()) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if acceptsGzip(r) {
		gz := gzipMemo(sn, key, body)
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Set("Content-Length", strconv.Itoa(len(gz)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(gz)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// WriteContentJSON writes v under a content-derived ETag (no modification
// time) — the validator form for payloads that are not snapshot-backed but
// still stable, like /api/v1/version and the route index.
func WriteContentJSON(w http.ResponseWriter, r *http.Request, etag string, v interface{}) {
	if checkConditional(w, r, etag, time.Time{}) {
		return
	}
	WriteJSON(w, http.StatusOK, v)
}
