package kb

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"cloudlens/internal/core"
)

// MatchAll returns the query that matches every stored profile. The zero
// Query is NOT match-all: its MinRegionAgnosticScore of 0 silently drops
// profiles whose score is negative (single-region subscriptions carry -1).
// Snapshot construction and any other "give me the whole knowledge base"
// caller must use this instead.
func MatchAll() Query { return Query{MinRegionAgnosticScore: disabledScore} }

// Snapshot is an immutable point-in-time view of a knowledge base,
// published at fold boundaries for readers (the policy engine) that must
// see a consistent profile set while ingestion keeps rewriting the live
// store underneath them. The profile pointers are safe to retain because
// every fold Puts freshly built Profile values — published profiles are
// never mutated in place.
type Snapshot struct {
	step     int
	seq      uint64
	profiles []*Profile // sorted by subscription
	bySub    map[core.SubscriptionID]*Profile

	fpOnce sync.Once
	fp     string
}

// NewSnapshot captures the store's current profile set. step labels the
// fold boundary the snapshot was published at (grid steps); seq is the
// publication sequence number (diagnostic only — it is never part of the
// snapshot's identity, which is the fingerprint).
func NewSnapshot(store *Store, step int, seq uint64) *Snapshot {
	var profiles []*Profile
	if store != nil {
		profiles = store.List(MatchAll())
	}
	if profiles == nil {
		profiles = []*Profile{} // empty snapshots stay range- and JSON-safe
	}
	bySub := make(map[core.SubscriptionID]*Profile, len(profiles))
	for _, p := range profiles {
		bySub[p.Subscription] = p
	}
	return &Snapshot{step: step, seq: seq, profiles: profiles, bySub: bySub}
}

// Step returns the fold boundary (in grid steps) the snapshot was
// published at.
func (s *Snapshot) Step() int { return s.step }

// Seq returns the publication sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Len returns the number of profiles captured.
func (s *Snapshot) Len() int { return len(s.profiles) }

// Profiles returns the captured profiles sorted by subscription. Callers
// must not mutate the slice or the profiles.
func (s *Snapshot) Profiles() []*Profile { return s.profiles }

// Get returns one subscription's profile.
func (s *Snapshot) Get(id core.SubscriptionID) (*Profile, bool) {
	p, ok := s.bySub[id]
	return p, ok
}

// Fingerprint returns the snapshot's content identity: an FNV-1a 64 over
// the canonical JSON of the sorted profile list, rendered as
// "fnv1a:<16 hex digits>". Two snapshots fingerprint equal exactly when
// their profile sets are byte-identical under encoding/json — the
// property the policy determinism oracle pins across runs and shard
// counts. Computed lazily, once: fold publication never pays for it.
func (s *Snapshot) Fingerprint() string {
	s.fpOnce.Do(func() {
		h := fnv.New64a()
		enc := json.NewEncoder(h)
		for _, p := range s.profiles {
			// Encode cannot fail on Profile (no channels, funcs, or NaN
			// fields reach a published profile); a failure would poison
			// the hash deterministically anyway.
			_ = enc.Encode(p)
		}
		s.fp = fmt.Sprintf("fnv1a:%016x", h.Sum64())
	})
	return s.fp
}

// PolicyVitals is the policy-engine slice of the /healthz payload: the
// configured policies, decision counters, ledger depth, and the identity
// of the snapshot decisions are currently evaluated against.
type PolicyVitals struct {
	Policies            []string `json:"policies"`
	Decisions           int64    `json:"decisions"`
	Accepted            int64    `json:"accepted"`
	Rejected            int64    `json:"rejected"`
	Counterfactuals     int64    `json:"counterfactuals"`
	LedgerEntries       int      `json:"ledgerEntries"`
	SnapshotStep        int      `json:"snapshotStep"`
	SnapshotProfiles    int      `json:"snapshotProfiles"`
	SnapshotFingerprint string   `json:"snapshotFingerprint"`
}
