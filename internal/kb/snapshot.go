package kb

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"cloudlens/internal/core"
)

// MatchAll returns the query that matches every stored profile. The zero
// Query is NOT match-all: its MinRegionAgnosticScore of 0 silently drops
// profiles whose score is negative (single-region subscriptions carry -1).
// Snapshot construction and any other "give me the whole knowledge base"
// caller must use this instead.
func MatchAll() Query { return Query{MinRegionAgnosticScore: disabledScore} }

// Snapshot is an immutable point-in-time view of a knowledge base,
// published at fold boundaries for readers (the v1 GET surface and the
// policy engine) that must see a consistent profile set while ingestion
// keeps rewriting the live store underneath them. The profile pointers are
// safe to retain because every fold Puts freshly built Profile values —
// published profiles are never mutated in place.
//
// Everything derived from a snapshot — per-cloud summaries, region
// rollups, assembled response payloads — is memoized on it, so a burst of
// reads between folds pays for each aggregate exactly once.
type Snapshot struct {
	step        int
	seq         uint64
	publishedAt time.Time
	profiles    []*Profile // sorted by subscription
	bySub       map[core.SubscriptionID]*Profile

	fpOnce sync.Once
	fp     string

	summMu       sync.Mutex
	summaries    map[core.Cloud]Summary
	summComputes atomic.Int64 // test hook: Summarize cache misses

	memoMu sync.Mutex
	memos  map[string]interface{}
}

// NewSnapshot captures the store's current profile set. step labels the
// fold boundary the snapshot was published at (grid steps); seq is the
// publication sequence number (diagnostic only — it is never part of the
// snapshot's identity, which is the fingerprint).
func NewSnapshot(store *Store, step int, seq uint64) *Snapshot {
	return NewSnapshotAt(store, step, seq, time.Time{})
}

// NewSnapshotAt is NewSnapshot with an explicit publication timestamp,
// threaded in from the caller (this package is wall-clock-free by the
// determinism lint). A zero time means "unknown" and disables
// Last-Modified validation on HTTP responses built from the snapshot.
func NewSnapshotAt(store *Store, step int, seq uint64, publishedAt time.Time) *Snapshot {
	var profiles []*Profile
	if store != nil {
		profiles = store.List(MatchAll())
	}
	return SnapshotOfSorted(profiles, step, seq, publishedAt)
}

// SnapshotOfSorted wraps an already subscription-sorted profile list
// (typically a Store.List(MatchAll()) result captured under the same lock
// acquisition as other per-fold state) without re-listing the store.
// Callers must not mutate the slice afterwards.
func SnapshotOfSorted(profiles []*Profile, step int, seq uint64, publishedAt time.Time) *Snapshot {
	if profiles == nil {
		profiles = []*Profile{} // empty snapshots stay range- and JSON-safe
	}
	bySub := make(map[core.SubscriptionID]*Profile, len(profiles))
	for _, p := range profiles {
		bySub[p.Subscription] = p
	}
	return &Snapshot{step: step, seq: seq, publishedAt: publishedAt, profiles: profiles, bySub: bySub}
}

// Step returns the fold boundary (in grid steps) the snapshot was
// published at.
func (s *Snapshot) Step() int { return s.step }

// Seq returns the publication sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// PublishedAt returns the wall-clock publication time, or the zero time
// when the snapshot was built without one (batch tests, offline tools).
func (s *Snapshot) PublishedAt() time.Time { return s.publishedAt }

// Len returns the number of profiles captured.
func (s *Snapshot) Len() int { return len(s.profiles) }

// Profiles returns the captured profiles sorted by subscription. Callers
// must not mutate the slice or the profiles.
func (s *Snapshot) Profiles() []*Profile { return s.profiles }

// Get returns one subscription's profile.
func (s *Snapshot) Get(id core.SubscriptionID) (*Profile, bool) {
	p, ok := s.bySub[id]
	return p, ok
}

// List returns the snapshot's profiles matching the query, in subscription
// order — the read-path counterpart of Store.List, minus the lock and the
// sort (the snapshot is already ordered). The returned slice is freshly
// allocated; the profiles are shared and must not be mutated.
func (s *Snapshot) List(q Query) []*Profile {
	out := make([]*Profile, 0, len(s.profiles))
	for _, p := range s.profiles {
		if q.Match(p) {
			out = append(out, p)
		}
	}
	return out
}

// Summarize aggregates one platform's profiles, computing each cloud's
// summary at most once per snapshot — a burst of summary and health reads
// between folds shares one aggregation instead of recomputing it under the
// store lock per request.
func (s *Snapshot) Summarize(cloud core.Cloud) Summary {
	s.summMu.Lock()
	defer s.summMu.Unlock()
	if sum, ok := s.summaries[cloud]; ok {
		return sum
	}
	if s.summaries == nil {
		s.summaries = make(map[core.Cloud]Summary, 2)
	}
	s.summComputes.Add(1)
	sum := summarizeSorted(cloud, s.profiles)
	s.summaries[cloud] = sum
	return sum
}

// SummarizeComputes returns how many Summarize calls missed the memo — a
// test hook pinning the at-most-once-per-cloud guarantee.
func (s *Snapshot) SummarizeComputes() int64 { return s.summComputes.Load() }

// Memo returns the value cached under key, computing it once per snapshot
// on first use. Handlers memoize assembled response payloads (and their
// encoded bytes) on the snapshot they were derived from, so identical
// requests between folds are served without re-aggregating — and
// byte-identically, which is what makes the snapshot fingerprint a sound
// ETag. compute runs under the memo lock; it must not call Memo itself.
func (s *Snapshot) Memo(key string, compute func() interface{}) interface{} {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if v, ok := s.memos[key]; ok {
		return v
	}
	if s.memos == nil {
		s.memos = make(map[string]interface{})
	}
	v := compute()
	s.memos[key] = v
	return v
}

// Fingerprint returns the snapshot's content identity: an FNV-1a 64 over
// the canonical JSON of the sorted profile list, rendered as
// "fnv1a:<16 hex digits>". Two snapshots fingerprint equal exactly when
// their profile sets are byte-identical under encoding/json — the
// property the policy determinism oracle pins across runs and shard
// counts. Computed lazily, once: fold publication never pays for it.
func (s *Snapshot) Fingerprint() string {
	s.fpOnce.Do(func() {
		h := fnv.New64a()
		enc := json.NewEncoder(h)
		for _, p := range s.profiles {
			// Encode cannot fail on Profile (no channels, funcs, or NaN
			// fields reach a published profile); a failure would poison
			// the hash deterministically anyway.
			_ = enc.Encode(p)
		}
		s.fp = fmt.Sprintf("fnv1a:%016x", h.Sum64())
	})
	return s.fp
}

// ETag returns the snapshot's strong HTTP entity tag: the quoted
// fingerprint. Every v1 GET served from the snapshot carries it, and a
// matching If-None-Match short-circuits to 304.
func (s *Snapshot) ETag() string { return `"` + s.Fingerprint() + `"` }

// PolicyVitals is the policy-engine slice of the /healthz payload: the
// configured policies, decision counters, ledger depth, and the identity
// of the snapshot decisions are currently evaluated against.
type PolicyVitals struct {
	Policies            []string `json:"policies"`
	Decisions           int64    `json:"decisions"`
	Accepted            int64    `json:"accepted"`
	Rejected            int64    `json:"rejected"`
	Counterfactuals     int64    `json:"counterfactuals"`
	LedgerEntries       int      `json:"ledgerEntries"`
	SnapshotStep        int      `json:"snapshotStep"`
	SnapshotProfiles    int      `json:"snapshotProfiles"`
	SnapshotFingerprint string   `json:"snapshotFingerprint"`
}
