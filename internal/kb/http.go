package kb

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"

	"cloudlens/internal/core"
)

// The v1 HTTP surface. Batch routes live here; cmd/wkbserver registers the
// live-replay routes onto the same mux through Register so both halves of
// the API share one route table, one error envelope, and one middleware
// stack:
//
//	GET /healthz                     readiness (ok | ingesting)
//	GET /api/v1/                     machine-readable route index
//	GET /api/v1/version              build info (module, VCS revision, Go)
//	GET /api/v1/summary              per-platform aggregates
//	GET /api/v1/profiles             profile list; filters: cloud=private|public,
//	                                 minAgnostic=<float>, pattern=<name>,
//	                                 minShortLived=<float>; paging: limit, cursor
//	GET /api/v1/profiles/{id}        one profile
//
// All responses are JSON. Errors — including the mux's own 404 and 405
// verdicts, via WithJSONErrors — use the envelope
//
//	{"error":{"code":"<machine code>","message":"<human text>"}}
//
// Listing routes answer a bare array by default and switch to the
// paginated ListPage envelope when limit or cursor is present (page.go).
// Unknown query parameters are rejected with code unknown_param.
//
// The handler is read-only; extraction happens offline via Extract or
// incrementally via the streaming ingestor.

// ErrorBody is the uniform JSON error envelope of every /api/v1 route.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code alongside the human
// message. Codes in use: bad_request, not_found, method_not_allowed.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Health is the /healthz payload. Status is "ok" when the knowledge base
// is fully built and "ingesting" while a live replay is still filling it —
// the readiness contract load balancers and wkbctl watch share. The
// fault-tolerance fields appear only on a replaying server: they surface
// input quality (quarantined and deduplicated samples, watermark lag) and
// checkpoint freshness at the readiness probe, so an operator sees a
// degrading feed without scraping /metrics.
type Health struct {
	Status               string  `json:"status"`
	Step                 int     `json:"step,omitempty"`
	Steps                int     `json:"steps,omitempty"`
	Quarantined          int64   `json:"quarantined,omitempty"`
	DuplicatesDropped    int64   `json:"duplicatesDropped,omitempty"`
	WatermarkLag         int     `json:"watermarkLag,omitempty"`
	LastCheckpointAgeSec float64 `json:"lastCheckpointAgeSec,omitempty"`
	// Shards breaks the vitals out per ingestion shard on a sharded
	// replay; absent on single-ingestor and batch servers.
	Shards []ShardHealth `json:"shards,omitempty"`
	// Policy carries the online policy engine's vitals; absent when the
	// server runs without -policies.
	Policy *PolicyVitals `json:"policy,omitempty"`
}

// ShardHealth is one ingestion shard's slice of the /healthz vitals, so a
// probe shows a lagging or fault-heavy shard instead of one blended
// number. The top-level Health fields remain the cross-shard aggregate.
type ShardHealth struct {
	Shard             int   `json:"shard"`
	Step              int   `json:"step"`
	SamplesIngested   int64 `json:"samplesIngested"`
	Quarantined       int64 `json:"quarantined,omitempty"`
	DuplicatesDropped int64 `json:"duplicatesDropped,omitempty"`
	WatermarkLag      int   `json:"watermarkLag,omitempty"`
}

// VersionInfo is the /api/v1/version payload, assembled from the binary's
// embedded build info.
type VersionInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var readVersion = sync.OnceValue(func() VersionInfo {
	v := VersionInfo{Module: "cloudlens", Version: "devel"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = info.GoVersion
	if info.Main.Path != "" {
		v.Module = info.Main.Path
	}
	if info.Main.Version != "" && info.Main.Version != "(devel)" {
		v.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
})

// RouteOptions customizes Register for the embedding server.
type RouteOptions struct {
	// Health supplies the /healthz payload; nil reports a constant "ok"
	// (batch mode: the knowledge base is complete before serving starts).
	Health func() Health
	// Wrap instruments each route handler (obs.HTTPMetrics.Wrap); nil
	// leaves routes bare. The route argument is the stable metric label —
	// the pattern with the method stripped — not the raw request path, so
	// per-route series stay bounded.
	Wrap func(route string, h http.Handler) http.Handler
}

// ParamInfo documents one query or path parameter in the route index.
type ParamInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Doc  string `json:"doc"`
}

// Cache-validation classes advertised per route in the index, so clients
// know which routes reward conditional requests.
const (
	// CacheSnapshot: the response carries the knowledge-base snapshot's
	// ETag and Last-Modified; If-None-Match answers 304 until the next
	// fold publishes a different profile set.
	CacheSnapshot = "snapshot"
	// CacheContent: the ETag derives from the payload itself (build info,
	// route index) rather than a snapshot.
	CacheContent = "content"
	// CacheNone: the payload is volatile (progress counters, fault
	// ledgers, metrics) and never answers 304.
	CacheNone = "none"
)

// RouteInfo is one row of the machine-readable route index served at
// GET /api/v1/.
type RouteInfo struct {
	Method  string      `json:"method"`
	Pattern string      `json:"pattern"`
	Doc     string      `json:"doc"`
	Params  []ParamInfo `json:"params,omitempty"`
	// Cache names the route's cache-validation class: snapshot, content,
	// or none.
	Cache string `json:"cache,omitempty"`
}

// RouteTable is the registry behind GET /api/v1/: every route mounted
// through Register lands here, and the embedding server adds its own
// (live, metrics) rows through Add before serving starts. The index
// handler reads the table per request, so rows added after Register are
// visible without re-mounting.
type RouteTable struct {
	mu     sync.RWMutex
	routes []RouteInfo
}

// Add appends one route description to the index.
func (t *RouteTable) Add(ri RouteInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes = append(t.routes, ri)
}

// Routes returns the documented routes sorted by pattern then method.
func (t *RouteTable) Routes() []RouteInfo {
	t.mu.RLock()
	out := make([]RouteInfo, len(t.routes))
	copy(out, t.routes)
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// RouteIndex is the GET /api/v1/ payload.
type RouteIndex struct {
	Routes []RouteInfo `json:"routes"`
}

// FilterParamInfo documents the shared profile-filter grammar; listing
// routes append PageParamInfo for the paging half.
func FilterParamInfo() []ParamInfo {
	return []ParamInfo{
		{Name: "cloud", Type: "string", Doc: "restrict to one platform: private | public"},
		{Name: "minAgnostic", Type: "float", Doc: "minimum region-agnostic score"},
		{Name: "pattern", Type: "string", Doc: "dominant pattern name (e.g. diurnal, stable)"},
		{Name: "minShortLived", Type: "float", Doc: "minimum short-lived VM share"},
	}
}

// PageParamInfo documents the cursor-paging grammar of listing routes.
func PageParamInfo() []ParamInfo {
	return []ParamInfo{
		{Name: "limit", Type: "int", Doc: "page size (1-1000); presence switches to the {items,next_cursor,total} envelope"},
		{Name: "cursor", Type: "string", Doc: "opaque position token from a previous page's next_cursor"},
	}
}

func listParamInfo() []ParamInfo { return append(FilterParamInfo(), PageParamInfo()...) }

// contentETag renders a content-derived entity tag: quoted FNV-1a 64 over
// the value's JSON encoding.
func contentETag(v interface{}) string {
	h := fnv.New64a()
	_ = json.NewEncoder(h).Encode(v)
	return fmt.Sprintf("\"fnv1a:%016x\"", h.Sum64())
}

// versionETag is fixed for the process lifetime, like the payload.
var versionETag = sync.OnceValue(func() string { return contentETag(readVersion()) })

// Register installs the batch knowledge-base routes onto mux using
// method-qualified patterns, so the mux itself enforces GET-only access
// and WithJSONErrors turns its 404/405 verdicts into the shared envelope.
// Every read is served from src's immutable snapshot — one consistent
// point-in-time view per request, with the snapshot fingerprint as ETag —
// so writers never block readers and repeated GETs between publications
// are byte-identical. It returns the route table backing GET /api/v1/;
// the embedding server documents any additional routes it mounts via
// RouteTable.Add.
func Register(mux *http.ServeMux, src SnapshotSource, opts RouteOptions) *RouteTable {
	wrap := opts.Wrap
	if wrap == nil {
		wrap = func(_ string, h http.Handler) http.Handler { return h }
	}
	table := &RouteTable{}
	handle := func(pattern, route, doc, cache string, params []ParamInfo, h http.HandlerFunc) {
		mux.Handle(pattern, wrap(route, h))
		table.Add(RouteInfo{Method: "GET", Pattern: route, Doc: doc, Params: params, Cache: cache})
	}

	handle("GET /healthz", "/healthz",
		"readiness: ok once the knowledge base is complete, ingesting during a live replay", CacheNone, nil,
		func(w http.ResponseWriter, r *http.Request) {
			h := Health{Status: "ok"}
			if opts.Health != nil {
				h = opts.Health()
			}
			WriteJSON(w, http.StatusOK, h)
		})
	// {$} pins the exact path: /api/v1/ serves the index while deeper
	// unknown paths still fall through to the enveloped 404.
	handle("GET /api/v1/{$}", "/api/v1/",
		"this route index", CacheContent, nil,
		func(w http.ResponseWriter, r *http.Request) {
			idx := RouteIndex{Routes: table.Routes()}
			WriteContentJSON(w, r, contentETag(idx), idx)
		})
	handle("GET /api/v1/version", "/api/v1/version",
		"build info: module, version, VCS revision, Go toolchain", CacheContent, nil,
		func(w http.ResponseWriter, r *http.Request) {
			WriteContentJSON(w, r, versionETag(), readVersion())
		})
	handle("GET /api/v1/summary", "/api/v1/summary",
		"per-platform aggregates keyed by cloud name", CacheSnapshot, nil,
		func(w http.ResponseWriter, r *http.Request) {
			sn := src.Snapshot()
			// Aggregated once per snapshot, encoded once per snapshot:
			// a burst of summary reads between folds is a header check
			// plus one buffer write each.
			body := sn.Memo("kb.summary.json", func() interface{} {
				out := map[string]Summary{
					core.Private.String(): sn.Summarize(core.Private),
					core.Public.String():  sn.Summarize(core.Public),
				}
				return encodeJSON(out)
			}).([]byte)
			WriteSnapshotRaw(w, r, sn, "kb.summary.json", body)
		})
	handle("GET /api/v1/profiles", "/api/v1/profiles",
		"batch profile list; bare array, or the paginated envelope with limit/cursor", CacheSnapshot, listParamInfo(),
		func(w http.ResponseWriter, r *http.Request) {
			q, pg, err := ParseListParams(r)
			if err != nil {
				WriteParamError(w, err)
				return
			}
			sn := src.Snapshot()
			items := sn.List(q)
			if !pg.Enabled() {
				WriteSnapshotJSON(w, r, sn, items)
				return
			}
			page, err := Paginate(items, func(p *Profile) string { return string(p.Subscription) }, pg)
			if err != nil {
				WriteParamError(w, err)
				return
			}
			WriteSnapshotJSON(w, r, sn, page)
		})
	handle("GET /api/v1/profiles/{id}", "/api/v1/profiles/{id}",
		"one batch profile by subscription id", CacheSnapshot,
		[]ParamInfo{{Name: "id", Type: "path", Doc: "subscription id"}},
		func(w http.ResponseWriter, r *http.Request) {
			sn := src.Snapshot()
			p, ok := sn.Get(core.SubscriptionID(r.PathValue("id")))
			if !ok {
				WriteError(w, http.StatusNotFound, "not_found", "profile not found")
				return
			}
			WriteSnapshotJSON(w, r, sn, p)
		})
	return table
}

// encodeJSON marshals v exactly like WriteJSON's streaming encoder
// (trailing newline included), for payloads memoized as bytes.
func encodeJSON(v interface{}) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// Mirror WriteJSON: encoding errors on these payload types cannot
		// happen; an empty body is the deterministic fallback.
		return []byte("\n")
	}
	return append(data, '\n')
}

// NewHandler exposes a knowledge-base store over HTTP with the shared
// error envelope — the standalone (uninstrumented) form of the v1 surface.
// Reads go through a version-gated StoreSource, so a store that is still
// being written serves each request from a consistent immutable snapshot
// and a finished store costs one snapshot total.
func NewHandler(store *Store) http.Handler {
	mux := http.NewServeMux()
	Register(mux, NewStoreSource(store, 0, nil), RouteOptions{})
	return WithJSONErrors(mux)
}

// WithJSONErrors wraps a route table so the mux's own fallback responses —
// 404 for unknown paths, 405 (with the Allow header) for method
// mismatches — carry the same JSON envelope as handler-written errors,
// instead of net/http's plaintext bodies.
func WithJSONErrors(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Handler reports a matched pattern without dispatching (an empty
		// pattern means the mux would serve its own 404/405). Matched
		// requests must go through mux.ServeHTTP — not the returned
		// handler — so the mux populates r.PathValue for {id} wildcards.
		if _, pattern := mux.Handler(r); pattern != "" {
			mux.ServeHTTP(w, r)
			return
		}
		// Run the mux's fallback against a body-discarding writer: it
		// decides 404 vs 405 and sets response headers (notably Allow) on
		// the real header map; we then write the envelope body.
		probe := headerOnlyWriter{header: w.Header()}
		mux.ServeHTTP(&probe, r)
		switch probe.status {
		case http.StatusMethodNotAllowed:
			WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method not allowed")
		case 0, http.StatusNotFound:
			WriteError(w, http.StatusNotFound, "not_found", "not found")
		default:
			// A redirect (e.g. trailing-slash cleanup) or other verdict:
			// headers are already on w, so just commit the status.
			w.WriteHeader(probe.status)
		}
	})
}

// headerOnlyWriter records the status the mux fallback chooses while
// letting it mutate the real response headers; the plaintext body is
// discarded.
type headerOnlyWriter struct {
	header http.Header
	status int
}

func (w *headerOnlyWriter) Header() http.Header { return w.header }

func (w *headerOnlyWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *headerOnlyWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}

// ParseQuery translates the filter parameters (cloud, minAgnostic,
// pattern, minShortLived) into a store query, ignoring anything else.
// Listing routes use the strict ParseListParams instead; this form stays
// for callers that embed the filter grammar inside a wider query string.
func ParseQuery(r *http.Request) (Query, error) {
	return parseFilters(r.URL.Query())
}

func errBadParam(name string) error {
	return &ParamError{Code: "bad_param", Message: "invalid query parameter: " + name}
}

// WriteJSON writes a JSON success body. Shared by every v1 route, batch
// and live.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header write can only be logged; for this
	// read-only API the client sees a truncated body and retries.
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the uniform error envelope.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	WriteJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}
