package kb

import (
	"encoding/json"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"

	"cloudlens/internal/core"
)

// The v1 HTTP surface. Batch routes live here; cmd/wkbserver registers the
// live-replay routes onto the same mux through Register so both halves of
// the API share one route table, one error envelope, and one middleware
// stack:
//
//	GET /healthz                     readiness (ok | ingesting)
//	GET /api/v1/version              build info (module, VCS revision, Go)
//	GET /api/v1/summary              per-platform aggregates
//	GET /api/v1/profiles             profile list; filters: cloud=private|public,
//	                                 minAgnostic=<float>, pattern=<name>,
//	                                 minShortLived=<float>
//	GET /api/v1/profiles/{id}        one profile
//
// All responses are JSON. Errors — including the mux's own 404 and 405
// verdicts, via WithJSONErrors — use the envelope
//
//	{"error":{"code":"<machine code>","message":"<human text>"}}
//
// The handler is read-only; extraction happens offline via Extract or
// incrementally via the streaming ingestor.

// ErrorBody is the uniform JSON error envelope of every /api/v1 route.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code alongside the human
// message. Codes in use: bad_request, not_found, method_not_allowed.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Health is the /healthz payload. Status is "ok" when the knowledge base
// is fully built and "ingesting" while a live replay is still filling it —
// the readiness contract load balancers and wkbctl watch share.
type Health struct {
	Status string `json:"status"`
	Step   int    `json:"step,omitempty"`
	Steps  int    `json:"steps,omitempty"`
}

// VersionInfo is the /api/v1/version payload, assembled from the binary's
// embedded build info.
type VersionInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var readVersion = sync.OnceValue(func() VersionInfo {
	v := VersionInfo{Module: "cloudlens", Version: "devel"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = info.GoVersion
	if info.Main.Path != "" {
		v.Module = info.Main.Path
	}
	if info.Main.Version != "" && info.Main.Version != "(devel)" {
		v.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
})

// RouteOptions customizes Register for the embedding server.
type RouteOptions struct {
	// Health supplies the /healthz payload; nil reports a constant "ok"
	// (batch mode: the knowledge base is complete before serving starts).
	Health func() Health
	// Wrap instruments each route handler (obs.HTTPMetrics.Wrap); nil
	// leaves routes bare. The route argument is the stable metric label —
	// the pattern with the method stripped — not the raw request path, so
	// per-route series stay bounded.
	Wrap func(route string, h http.Handler) http.Handler
}

// Register installs the batch knowledge-base routes onto mux using
// method-qualified patterns, so the mux itself enforces GET-only access
// and WithJSONErrors turns its 404/405 verdicts into the shared envelope.
func Register(mux *http.ServeMux, store *Store, opts RouteOptions) {
	wrap := opts.Wrap
	if wrap == nil {
		wrap = func(_ string, h http.Handler) http.Handler { return h }
	}
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, wrap(route, h))
	}

	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: "ok"}
		if opts.Health != nil {
			h = opts.Health()
		}
		WriteJSON(w, http.StatusOK, h)
	})
	handle("GET /api/v1/version", "/api/v1/version", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, readVersion())
	})
	handle("GET /api/v1/summary", "/api/v1/summary", func(w http.ResponseWriter, r *http.Request) {
		out := map[string]Summary{
			core.Private.String(): store.Summarize(core.Private),
			core.Public.String():  store.Summarize(core.Public),
		}
		WriteJSON(w, http.StatusOK, out)
	})
	handle("GET /api/v1/profiles", "/api/v1/profiles", func(w http.ResponseWriter, r *http.Request) {
		q, err := ParseQuery(r)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		WriteJSON(w, http.StatusOK, store.List(q))
	})
	handle("GET /api/v1/profiles/{id}", "/api/v1/profiles/{id}", func(w http.ResponseWriter, r *http.Request) {
		p, ok := store.Get(core.SubscriptionID(r.PathValue("id")))
		if !ok {
			WriteError(w, http.StatusNotFound, "not_found", "profile not found")
			return
		}
		WriteJSON(w, http.StatusOK, p)
	})
}

// NewHandler exposes a knowledge-base store over HTTP with the shared
// error envelope — the standalone (uninstrumented) form of the v1 surface.
func NewHandler(store *Store) http.Handler {
	mux := http.NewServeMux()
	Register(mux, store, RouteOptions{})
	return WithJSONErrors(mux)
}

// WithJSONErrors wraps a route table so the mux's own fallback responses —
// 404 for unknown paths, 405 (with the Allow header) for method
// mismatches — carry the same JSON envelope as handler-written errors,
// instead of net/http's plaintext bodies.
func WithJSONErrors(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Handler reports a matched pattern without dispatching (an empty
		// pattern means the mux would serve its own 404/405). Matched
		// requests must go through mux.ServeHTTP — not the returned
		// handler — so the mux populates r.PathValue for {id} wildcards.
		if _, pattern := mux.Handler(r); pattern != "" {
			mux.ServeHTTP(w, r)
			return
		}
		// Run the mux's fallback against a body-discarding writer: it
		// decides 404 vs 405 and sets response headers (notably Allow) on
		// the real header map; we then write the envelope body.
		probe := headerOnlyWriter{header: w.Header()}
		mux.ServeHTTP(&probe, r)
		switch probe.status {
		case http.StatusMethodNotAllowed:
			WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed", "method not allowed")
		case 0, http.StatusNotFound:
			WriteError(w, http.StatusNotFound, "not_found", "not found")
		default:
			// A redirect (e.g. trailing-slash cleanup) or other verdict:
			// headers are already on w, so just commit the status.
			w.WriteHeader(probe.status)
		}
	})
}

// headerOnlyWriter records the status the mux fallback chooses while
// letting it mutate the real response headers; the plaintext body is
// discarded.
type headerOnlyWriter struct {
	header http.Header
	status int
}

func (w *headerOnlyWriter) Header() http.Header { return w.header }

func (w *headerOnlyWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *headerOnlyWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}

// ParseQuery translates URL parameters (cloud, minAgnostic, pattern,
// minShortLived) into a store query. Exported so other handlers exposing
// profile listings — the live endpoints of cmd/wkbserver — accept the same
// filter grammar as /api/v1/profiles.
func ParseQuery(r *http.Request) (Query, error) {
	q := Query{MinRegionAgnosticScore: disabledScore}
	vals := r.URL.Query()
	switch vals.Get("cloud") {
	case "":
	case "private":
		q.Cloud = core.Private
	case "public":
		q.Cloud = core.Public
	default:
		return q, errBadParam("cloud")
	}
	if s := vals.Get("minAgnostic"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, errBadParam("minAgnostic")
		}
		q.MinRegionAgnosticScore = v
	}
	if s := vals.Get("minShortLived"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, errBadParam("minShortLived")
		}
		q.MinShortLivedShare = v
	}
	if s := vals.Get("pattern"); s != "" {
		found := false
		for _, p := range core.Patterns() {
			if p.String() == s {
				q.Pattern = p
				found = true
				break
			}
		}
		if !found {
			return q, errBadParam("pattern")
		}
	}
	return q, nil
}

type badParamError string

func (e badParamError) Error() string { return "invalid query parameter: " + string(e) }

func errBadParam(name string) error { return badParamError(name) }

// WriteJSON writes a JSON success body. Shared by every v1 route, batch
// and live.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header write can only be logged; for this
	// read-only API the client sees a truncated body and retries.
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the uniform error envelope.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	WriteJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}
