package kb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"cloudlens/internal/core"
)

// NewHandler exposes a knowledge-base store over HTTP:
//
//	GET /healthz                     liveness probe
//	GET /api/v1/summary              per-platform aggregates
//	GET /api/v1/profiles             profile list; filters: cloud=private|public,
//	                                 minAgnostic=<float>, pattern=<name>,
//	                                 minShortLived=<float>
//	GET /api/v1/profiles/{id}        one profile
//
// All responses are JSON. The handler is read-only; extraction happens
// offline via Extract.
func NewHandler(store *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/api/v1/summary", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		out := map[string]Summary{
			core.Private.String(): store.Summarize(core.Private),
			core.Public.String():  store.Summarize(core.Public),
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/api/v1/profiles", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q, err := ParseQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, store.List(q))
	})
	mux.HandleFunc("/api/v1/profiles/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/api/v1/profiles/")
		if id == "" {
			http.Error(w, "missing subscription id", http.StatusBadRequest)
			return
		}
		p, ok := store.Get(core.SubscriptionID(id))
		if !ok {
			http.Error(w, "profile not found", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	return mux
}

// ParseQuery translates URL parameters (cloud, minAgnostic, pattern,
// minShortLived) into a store query. Exported so other handlers exposing
// profile listings — the live endpoints of cmd/wkbserver — accept the same
// filter grammar as /api/v1/profiles.
func ParseQuery(r *http.Request) (Query, error) {
	q := Query{MinRegionAgnosticScore: disabledScore}
	vals := r.URL.Query()
	switch vals.Get("cloud") {
	case "":
	case "private":
		q.Cloud = core.Private
	case "public":
		q.Cloud = core.Public
	default:
		return q, errBadParam("cloud")
	}
	if s := vals.Get("minAgnostic"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, errBadParam("minAgnostic")
		}
		q.MinRegionAgnosticScore = v
	}
	if s := vals.Get("minShortLived"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, errBadParam("minShortLived")
		}
		q.MinShortLivedShare = v
	}
	if s := vals.Get("pattern"); s != "" {
		found := false
		for _, p := range core.Patterns() {
			if p.String() == s {
				q.Pattern = p
				found = true
				break
			}
		}
		if !found {
			return q, errBadParam("pattern")
		}
	}
	return q, nil
}

type badParamError string

func (e badParamError) Error() string { return "invalid query parameter: " + string(e) }

func errBadParam(name string) error { return badParamError(name) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header write can only be logged; for this
	// read-only API the client sees a truncated body and retries.
	_ = json.NewEncoder(w).Encode(v)
}
