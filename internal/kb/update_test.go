package kb

import (
	"math"
	"testing"

	"cloudlens/internal/core"
)

func mkProfile(id string, util float64) *Profile {
	return &Profile{
		Subscription:        core.SubscriptionID(id),
		Cloud:               core.Private,
		Services:            []string{"svc-" + id},
		Regions:             []string{"us-east"},
		VMsObserved:         10,
		SnapshotVMs:         8,
		SnapshotCores:       32,
		MedianLifetimeMin:   100,
		ShortLivedShare:     0.4,
		MeanUtilization:     util,
		PatternShares:       map[core.Pattern]float64{core.PatternDiurnal: 0.8, core.PatternStable: 0.2},
		DominantPattern:     core.PatternDiurnal,
		RegionAgnosticScore: -1,
		PeakHourUTC:         14,
	}
}

func TestMergeInsertsNewSubscriptions(t *testing.T) {
	s := NewStore()
	u := NewStore()
	u.Put(mkProfile("a", 0.2))
	s.Merge(u, MergeOptions{})
	if s.Len() != 1 {
		t.Fatalf("store has %d profiles", s.Len())
	}
	got, _ := s.Get("a")
	if got.MeanUtilization != 0.2 {
		t.Fatalf("inserted profile altered: %v", got.MeanUtilization)
	}
}

func TestMergeRetainsMissingSubscriptions(t *testing.T) {
	s := NewStore()
	s.Put(mkProfile("old", 0.3))
	s.Merge(NewStore(), MergeOptions{})
	if _, ok := s.Get("old"); !ok {
		t.Fatal("missing week erased existing knowledge")
	}
}

func TestMergeBlendsStatistics(t *testing.T) {
	s := NewStore()
	s.Put(mkProfile("a", 0.2))
	u := NewStore()
	newer := mkProfile("a", 0.4)
	newer.Regions = []string{"us-west"}
	newer.MedianLifetimeMin = 200
	u.Put(newer)
	s.Merge(u, MergeOptions{NewWeight: 0.5})
	got, _ := s.Get("a")
	if math.Abs(got.MeanUtilization-0.3) > 1e-12 {
		t.Fatalf("blended utilization = %v, want 0.3", got.MeanUtilization)
	}
	if math.Abs(got.MedianLifetimeMin-150) > 1e-12 {
		t.Fatalf("blended lifetime = %v, want 150", got.MedianLifetimeMin)
	}
	// Regions union.
	if len(got.Regions) != 2 || got.Regions[0] != "us-east" || got.Regions[1] != "us-west" {
		t.Fatalf("regions = %v", got.Regions)
	}
	// Counters describe the latest window.
	if got.VMsObserved != newer.VMsObserved {
		t.Fatal("counters not refreshed")
	}
}

func TestMergeSlowEWMAResistsNoise(t *testing.T) {
	s := NewStore()
	s.Put(mkProfile("a", 0.2))
	u := NewStore()
	u.Put(mkProfile("a", 0.9)) // one anomalous week
	s.Merge(u, MergeOptions{}) // default weight 0.3
	got, _ := s.Get("a")
	if got.MeanUtilization > 0.45 {
		t.Fatalf("one noisy week moved utilization to %v", got.MeanUtilization)
	}
}

func TestMergeRegionAgnosticScoreRules(t *testing.T) {
	tests := []struct {
		name      string
		oldScore  float64
		newScore  float64
		wantRange [2]float64
	}{
		{name: "both defined", oldScore: 0.8, newScore: 0.4, wantRange: [2]float64{0.6, 0.7}},
		{name: "old unknown", oldScore: -1, newScore: 0.9, wantRange: [2]float64{0.9, 0.9}},
		{name: "new unknown", oldScore: 0.7, newScore: -1, wantRange: [2]float64{0.7, 0.7}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewStore()
			p1 := mkProfile("a", 0.2)
			p1.RegionAgnosticScore = tt.oldScore
			s.Put(p1)
			u := NewStore()
			p2 := mkProfile("a", 0.2)
			p2.RegionAgnosticScore = tt.newScore
			u.Put(p2)
			s.Merge(u, MergeOptions{NewWeight: 0.5})
			got, _ := s.Get("a")
			if got.RegionAgnosticScore < tt.wantRange[0] || got.RegionAgnosticScore > tt.wantRange[1] {
				t.Fatalf("score = %v, want in %v", got.RegionAgnosticScore, tt.wantRange)
			}
		})
	}
}

func TestMergeDominantPatternShifts(t *testing.T) {
	s := NewStore()
	s.Put(mkProfile("a", 0.2))
	u := NewStore()
	shifted := mkProfile("a", 0.2)
	shifted.PatternShares = map[core.Pattern]float64{core.PatternStable: 0.9, core.PatternDiurnal: 0.1}
	shifted.DominantPattern = core.PatternStable
	u.Put(shifted)
	// A heavy update weight flips the dominant pattern.
	s.Merge(u, MergeOptions{NewWeight: 0.9})
	got, _ := s.Get("a")
	if got.DominantPattern != core.PatternStable {
		t.Fatalf("dominant pattern = %v, want stable", got.DominantPattern)
	}
}

func TestMergeWeekOverWeekFromTraces(t *testing.T) {
	_, week1 := sharedKB(t)
	// Week 2: a different seed plays the role of the next observation
	// window (reuse the shared trace config but a fresh extraction is
	// too expensive; blending week1 into itself must be a fixed point).
	merged := NewStore()
	merged.Merge(week1, MergeOptions{})
	merged.Merge(week1, MergeOptions{})
	if merged.Len() != week1.Len() {
		t.Fatalf("idempotent merge changed size: %d vs %d", merged.Len(), week1.Len())
	}
	p1, _ := week1.Get("prv-sub-servicex")
	p2, ok := merged.Get("prv-sub-servicex")
	if !ok {
		t.Fatal("profile lost")
	}
	if math.Abs(p1.MeanUtilization-p2.MeanUtilization) > 1e-9 {
		t.Fatalf("self-merge moved utilization: %v -> %v", p1.MeanUtilization, p2.MeanUtilization)
	}
}
