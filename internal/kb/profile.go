// Package kb implements the centralized workload knowledge base the paper
// proposes in Section V: a store of per-subscription workload knowledge
// continuously extracted from telemetry signals (CPU utilization, VM
// lifetime, deployment spread) that management policies consume instead of
// raw traces. The paper positions this as "the key pillar of the future
// workload-aware intelligent cloud platform"; the over-subscription, spot,
// and region-balancing policies in this repository all accept knowledge-
// base profiles as input.
package kb

import (
	"sort"

	"cloudlens/internal/classify"
	"cloudlens/internal/core"
	"cloudlens/internal/parallel"
	"cloudlens/internal/sim"
	"cloudlens/internal/stats"
	"cloudlens/internal/trace"
)

// Profile is the extracted knowledge about one subscription's workload.
type Profile struct {
	Subscription core.SubscriptionID `json:"subscription"`
	Cloud        core.Cloud          `json:"cloud"`
	// Family is the workload family the profile was extracted from; it
	// decides which taxonomy PatternShares uses and what MeanUtilization
	// means (CPU fraction vs normalized invocation rate).
	Family core.Family `json:"family,omitempty"`
	// Services lists the subscription's deployment groups.
	Services []string `json:"services"`
	// Regions lists the deployment regions observed during the week.
	Regions []string `json:"regions"`
	// VMsObserved is the total number of VM records over the week;
	// SnapshotVMs and SnapshotCores describe the weekday snapshot.
	VMsObserved   int `json:"vmsObserved"`
	SnapshotVMs   int `json:"snapshotVMs"`
	SnapshotCores int `json:"snapshotCores"`
	// MedianLifetimeMin is the median lifetime of the subscription's
	// within-window VMs (0 when none completed inside the window).
	MedianLifetimeMin float64 `json:"medianLifetimeMin"`
	// ShortLivedShare is the fraction of within-window VMs below the
	// shortest lifetime bin — the spot-VM candidate signal.
	ShortLivedShare float64 `json:"shortLivedShare"`
	// PatternShares holds the classified utilization-pattern mix of the
	// subscription's long-running VMs.
	PatternShares map[core.Pattern]float64 `json:"patternShares"`
	// DominantPattern is the largest entry of PatternShares.
	DominantPattern core.Pattern `json:"dominantPattern"`
	// MeanUtilization is the average CPU fraction across long-running
	// VMs over the week.
	MeanUtilization float64 `json:"meanUtilization"`
	// RegionAgnosticScore is the mean pairwise cross-region utilization
	// correlation (the Figure 7b signal); -1 when the subscription is
	// single-region and the score is undefined.
	RegionAgnosticScore float64 `json:"regionAgnosticScore"`
	// PeakHourUTC is the UTC hour of the subscription's highest mean
	// utilization; -1 when unknown.
	PeakHourUTC int `json:"peakHourUTC"`
}

// ExtractOptions tunes profile extraction.
type ExtractOptions struct {
	// MaxClassifyPerSub caps how many long-running VMs are classified
	// per subscription (default 24); classification dominates cost.
	MaxClassifyPerSub int
	// ShortBinMinutes is the shortest-lifetime-bin width (default 30).
	ShortBinMinutes int
	// Cache, when non-nil, supplies memoized per-VM utilization series
	// shared with other consumers of the same trace (e.g. Characterize);
	// extraction then skips re-materializing series the analyses already
	// paid for. Leave nil for standalone extraction — each worker keeps
	// its series in one reused scratch buffer instead.
	Cache *trace.SeriesCache
}

func (o ExtractOptions) withDefaults() ExtractOptions {
	if o.MaxClassifyPerSub == 0 {
		o.MaxClassifyPerSub = 24
	}
	if o.ShortBinMinutes == 0 {
		o.ShortBinMinutes = 30
	}
	return o
}

// MinProfileSteps is the history (one day) a VM needs to contribute
// pattern and utilization knowledge on the canonical five-minute grid.
// Grid-independent code must use MinProfileStepsFor: this constant baked
// the five-minute interval into every qualification test, which broke
// coarser grids outright (at 15-minute steps the streaming sketches retain
// fewer than 288 samples, so the qualification flush silently lost
// history) and made finer grids qualify after a fraction of a day.
const MinProfileSteps = 288

// MinProfileStepsFor is the qualification threshold for an arbitrary grid:
// one day of history, whatever the sampling interval. It is always within
// the streaming sketches' retention window (1.5 days), so the
// qualification flush recovers every sample. Exported so the streaming
// pipeline applies the same threshold when it folds live samples into
// knowledge-base state.
func MinProfileStepsFor(g sim.Grid) int {
	return g.StepsPerDay()
}

// Extract builds a knowledge base from a trace. Subscriptions are profiled
// independently, so they fan out over the worker pool in sorted (cloud,
// subscription) order; each worker reuses one series scratch buffer across
// its whole chunk of subscriptions, and the finished profiles land in the
// store sequentially. Profiles are identical to a sequential extraction:
// all per-subscription state is worker-local.
func Extract(t *trace.Trace, opts ExtractOptions) *Store {
	opts = opts.withDefaults()
	store := NewStore()
	cl := classifiers{
		family: t.Family,
		cpu:    classify.Options{StepsPerHour: t.Grid.StepsPerHour()},
		inv:    classify.InvocationOptions{StepsPerHour: t.Grid.StepsPerHour()},
	}

	type job struct {
		sub core.SubscriptionID
		vms []*trace.VM
	}
	var jobs []job
	for _, cloud := range core.Clouds() {
		bySub := t.BySubscription(cloud)
		subs := make([]core.SubscriptionID, 0, len(bySub))
		for sub := range bySub {
			subs = append(subs, sub)
		}
		sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
		for _, sub := range subs {
			jobs = append(jobs, job{sub: sub, vms: bySub[sub]})
		}
	}
	profiles := parallel.MapChunk(len(jobs), func(lo, hi int, dst []*Profile) {
		var buf []float64
		for i := lo; i < hi; i++ {
			var p *Profile
			p, buf = extractProfile(t, opts, cl, jobs[i].sub, jobs[i].vms, buf)
			dst[i-lo] = p
		}
	})
	for _, p := range profiles {
		store.Put(p)
	}
	return store
}

// classifiers bundles the per-family classifier options so extraction
// configures them once per trace, not per subscription.
type classifiers struct {
	family core.Family
	cpu    classify.Options
	inv    classify.InvocationOptions
}

// classify routes a series through the trace family's classifier.
func (c classifiers) classify(series []float64) core.Pattern {
	if c.family == core.FamilyServerless {
		return classify.ClassifyInvocation(series, c.inv).Pattern
	}
	return classify.Classify(series, c.cpu).Pattern
}

// extractProfile profiles one subscription. buf is a scratch series buffer
// threaded through consecutive calls on the same worker; the (possibly
// grown) buffer is returned for reuse.
func extractProfile(t *trace.Trace, opts ExtractOptions, cl classifiers,
	sub core.SubscriptionID, vms []*trace.VM, buf []float64) (*Profile, []float64) {
	snap := t.SnapshotStep()
	minSteps := MinProfileStepsFor(t.Grid)
	p := &Profile{
		Subscription:        sub,
		Cloud:               vms[0].Cloud,
		Family:              t.Family,
		VMsObserved:         len(vms),
		PatternShares:       make(map[core.Pattern]float64),
		RegionAgnosticScore: -1,
		PeakHourUTC:         -1,
	}
	regionSet := make(map[string]bool)
	serviceSet := make(map[string]bool)
	var lifetimes []float64
	shortLived := 0
	classified := 0
	var utilSum float64
	var utilN int
	hourly := make([]float64, 24)
	hourlyN := make([]float64, 24)

	for _, v := range vms {
		regionSet[v.Region] = true
		serviceSet[v.Service] = true
		if v.AliveAt(snap) {
			p.SnapshotVMs++
			p.SnapshotCores += v.Size.Cores
		}
		if v.WithinWindow(t.Grid.N) {
			lifeMin := float64(v.LifetimeSteps()) * t.Grid.Step.Minutes()
			lifetimes = append(lifetimes, lifeMin)
			if lifeMin < float64(opts.ShortBinMinutes) {
				shortLived++
			}
		}
		from, to, ok := v.AliveRange(t.Grid.N)
		if !ok || to-from < minSteps {
			continue
		}
		if classified < opts.MaxClassifyPerSub {
			var series []float64
			if opts.Cache != nil {
				series, _ = opts.Cache.Series(v) // spans exactly [from, to)
			} else {
				buf = v.Usage.SeriesInto(buf, t.Grid, from, to)
				series = buf
			}
			p.PatternShares[cl.classify(series)]++
			classified++
			for i, u := range series {
				utilSum += u
				utilN++
				h := t.Grid.HourOf(from+i) % 24
				hourly[h] += u
				hourlyN[h]++
			}
		}
	}

	p.Regions = sortedKeys(regionSet)
	p.Services = sortedKeys(serviceSet)
	if len(lifetimes) > 0 {
		p.MedianLifetimeMin = stats.Quantile(lifetimes, 0.5)
		p.ShortLivedShare = float64(shortLived) / float64(len(lifetimes))
	}
	if classified > 0 {
		for k := range p.PatternShares {
			p.PatternShares[k] /= float64(classified)
		}
		// Ties resolve in the family's fixed pattern order so extraction is
		// deterministic (map iteration order is not) and the streaming
		// pipeline's fold converges to the same dominant pattern.
		best := core.PatternUnknown
		for _, k := range t.Family.Patterns() {
			if share, ok := p.PatternShares[k]; ok {
				if best == core.PatternUnknown || share > p.PatternShares[best] {
					best = k
				}
			}
		}
		p.DominantPattern = best
	}
	if utilN > 0 {
		p.MeanUtilization = utilSum / float64(utilN)
		peak := 0
		for h := 1; h < 24; h++ {
			if mean(hourly[h], hourlyN[h]) > mean(hourly[peak], hourlyN[peak]) {
				peak = h
			}
		}
		p.PeakHourUTC = peak
	}
	if len(p.Regions) > 1 {
		p.RegionAgnosticScore = regionAgnosticScore(t, opts.Cache, vms)
	}
	return p, buf
}

func mean(sum, n float64) float64 {
	if n == 0 {
		return 0
	}
	return sum / n
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// regionAgnosticScore computes the mean pairwise Pearson correlation of the
// subscription's region-averaged hourly utilization, across all its
// deployment regions.
func regionAgnosticScore(t *trace.Trace, c *trace.SeriesCache, vms []*trace.VM) float64 {
	stepsPerHour := t.Grid.StepsPerHour()
	hours := t.Grid.Hours()
	minSteps := MinProfileStepsFor(t.Grid)
	perRegion := make(map[string][]float64)
	perRegionN := make(map[string][]float64)
	for _, v := range vms {
		from, to, ok := v.AliveRange(t.Grid.N)
		if !ok || to-from < minSteps {
			continue
		}
		var vmSeries []float64
		if c != nil {
			vmSeries, _ = c.Series(v) // spans exactly [from, to)
		}
		series := perRegion[v.Region]
		counts := perRegionN[v.Region]
		if series == nil {
			series = make([]float64, hours)
			counts = make([]float64, hours)
			perRegion[v.Region] = series
			perRegionN[v.Region] = counts
		}
		for h := 0; h < hours; h++ {
			step := h * stepsPerHour
			if from <= step && step < to {
				if vmSeries != nil {
					series[h] += vmSeries[step-from]
				} else {
					series[h] += v.Usage.At(t.Grid, step)
				}
				counts[h]++
			}
		}
	}
	if len(perRegion) < 2 {
		return -1
	}
	regions := make([]string, 0, len(perRegion))
	for r := range perRegion {
		avg := perRegion[r]
		for h := range avg {
			if perRegionN[r][h] > 0 {
				avg[h] /= perRegionN[r][h]
			}
		}
		regions = append(regions, r)
	}
	sort.Strings(regions)
	var sum float64
	var n int
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			sum += stats.Pearson(perRegion[regions[i]], perRegion[regions[j]])
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}
