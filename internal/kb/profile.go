// Package kb implements the centralized workload knowledge base the paper
// proposes in Section V: a store of per-subscription workload knowledge
// continuously extracted from telemetry signals (CPU utilization, VM
// lifetime, deployment spread) that management policies consume instead of
// raw traces. The paper positions this as "the key pillar of the future
// workload-aware intelligent cloud platform"; the over-subscription, spot,
// and region-balancing policies in this repository all accept knowledge-
// base profiles as input.
package kb

import (
	"sort"

	"cloudlens/internal/classify"
	"cloudlens/internal/core"
	"cloudlens/internal/stats"
	"cloudlens/internal/trace"
)

// Profile is the extracted knowledge about one subscription's workload.
type Profile struct {
	Subscription core.SubscriptionID `json:"subscription"`
	Cloud        core.Cloud          `json:"cloud"`
	// Services lists the subscription's deployment groups.
	Services []string `json:"services"`
	// Regions lists the deployment regions observed during the week.
	Regions []string `json:"regions"`
	// VMsObserved is the total number of VM records over the week;
	// SnapshotVMs and SnapshotCores describe the weekday snapshot.
	VMsObserved   int `json:"vmsObserved"`
	SnapshotVMs   int `json:"snapshotVMs"`
	SnapshotCores int `json:"snapshotCores"`
	// MedianLifetimeMin is the median lifetime of the subscription's
	// within-window VMs (0 when none completed inside the window).
	MedianLifetimeMin float64 `json:"medianLifetimeMin"`
	// ShortLivedShare is the fraction of within-window VMs below the
	// shortest lifetime bin — the spot-VM candidate signal.
	ShortLivedShare float64 `json:"shortLivedShare"`
	// PatternShares holds the classified utilization-pattern mix of the
	// subscription's long-running VMs.
	PatternShares map[core.Pattern]float64 `json:"patternShares"`
	// DominantPattern is the largest entry of PatternShares.
	DominantPattern core.Pattern `json:"dominantPattern"`
	// MeanUtilization is the average CPU fraction across long-running
	// VMs over the week.
	MeanUtilization float64 `json:"meanUtilization"`
	// RegionAgnosticScore is the mean pairwise cross-region utilization
	// correlation (the Figure 7b signal); -1 when the subscription is
	// single-region and the score is undefined.
	RegionAgnosticScore float64 `json:"regionAgnosticScore"`
	// PeakHourUTC is the UTC hour of the subscription's highest mean
	// utilization; -1 when unknown.
	PeakHourUTC int `json:"peakHourUTC"`
}

// ExtractOptions tunes profile extraction.
type ExtractOptions struct {
	// MaxClassifyPerSub caps how many long-running VMs are classified
	// per subscription (default 24); classification dominates cost.
	MaxClassifyPerSub int
	// ShortBinMinutes is the shortest-lifetime-bin width (default 30).
	ShortBinMinutes int
}

func (o ExtractOptions) withDefaults() ExtractOptions {
	if o.MaxClassifyPerSub == 0 {
		o.MaxClassifyPerSub = 24
	}
	if o.ShortBinMinutes == 0 {
		o.ShortBinMinutes = 30
	}
	return o
}

// minProfileSteps is the history (one day) a VM needs to contribute
// pattern and utilization knowledge.
const minProfileSteps = 288

// Extract builds a knowledge base from a trace.
func Extract(t *trace.Trace, opts ExtractOptions) *Store {
	opts = opts.withDefaults()
	store := NewStore()
	clOpts := classify.Options{StepsPerHour: 60 / t.Grid.StepMinutes()}
	snap := t.SnapshotStep()
	stepMin := t.Grid.StepMinutes()

	for _, cloud := range core.Clouds() {
		for sub, vms := range t.BySubscription(cloud) {
			p := &Profile{
				Subscription:        sub,
				Cloud:               cloud,
				VMsObserved:         len(vms),
				PatternShares:       make(map[core.Pattern]float64),
				RegionAgnosticScore: -1,
				PeakHourUTC:         -1,
			}
			regionSet := make(map[string]bool)
			serviceSet := make(map[string]bool)
			var lifetimes []float64
			shortLived := 0
			classified := 0
			var utilSum float64
			var utilN int
			hourly := make([]float64, 24)
			hourlyN := make([]float64, 24)

			for _, v := range vms {
				regionSet[v.Region] = true
				serviceSet[v.Service] = true
				if v.AliveAt(snap) {
					p.SnapshotVMs++
					p.SnapshotCores += v.Size.Cores
				}
				if v.WithinWindow(t.Grid.N) {
					lifeMin := float64(v.LifetimeSteps() * stepMin)
					lifetimes = append(lifetimes, lifeMin)
					if lifeMin < float64(opts.ShortBinMinutes) {
						shortLived++
					}
				}
				from, to, ok := v.AliveRange(t.Grid.N)
				if !ok || to-from < minProfileSteps {
					continue
				}
				if classified < opts.MaxClassifyPerSub {
					series := v.Usage.Series(t.Grid, from, to)
					res := classify.Classify(series, clOpts)
					p.PatternShares[res.Pattern]++
					classified++
					for i, u := range series {
						utilSum += u
						utilN++
						h := t.Grid.HourOf(from+i) % 24
						hourly[h] += u
						hourlyN[h]++
					}
				}
			}

			p.Regions = sortedKeys(regionSet)
			p.Services = sortedKeys(serviceSet)
			if len(lifetimes) > 0 {
				p.MedianLifetimeMin = stats.Quantile(lifetimes, 0.5)
				p.ShortLivedShare = float64(shortLived) / float64(len(lifetimes))
			}
			if classified > 0 {
				best := core.PatternUnknown
				for k := range p.PatternShares {
					p.PatternShares[k] /= float64(classified)
					if best == core.PatternUnknown || p.PatternShares[k] > p.PatternShares[best] {
						best = k
					}
				}
				p.DominantPattern = best
			}
			if utilN > 0 {
				p.MeanUtilization = utilSum / float64(utilN)
				peak := 0
				for h := 1; h < 24; h++ {
					if mean(hourly[h], hourlyN[h]) > mean(hourly[peak], hourlyN[peak]) {
						peak = h
					}
				}
				p.PeakHourUTC = peak
			}
			if len(p.Regions) > 1 {
				p.RegionAgnosticScore = regionAgnosticScore(t, vms)
			}
			store.Put(p)
		}
	}
	return store
}

func mean(sum, n float64) float64 {
	if n == 0 {
		return 0
	}
	return sum / n
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// regionAgnosticScore computes the mean pairwise Pearson correlation of the
// subscription's region-averaged hourly utilization, across all its
// deployment regions.
func regionAgnosticScore(t *trace.Trace, vms []*trace.VM) float64 {
	stepsPerHour := 60 / t.Grid.StepMinutes()
	hours := t.Grid.Hours()
	perRegion := make(map[string][]float64)
	perRegionN := make(map[string][]float64)
	for _, v := range vms {
		from, to, ok := v.AliveRange(t.Grid.N)
		if !ok || to-from < minProfileSteps {
			continue
		}
		series := perRegion[v.Region]
		counts := perRegionN[v.Region]
		if series == nil {
			series = make([]float64, hours)
			counts = make([]float64, hours)
			perRegion[v.Region] = series
			perRegionN[v.Region] = counts
		}
		for h := 0; h < hours; h++ {
			step := h * stepsPerHour
			if from <= step && step < to {
				series[h] += v.Usage.At(t.Grid, step)
				counts[h]++
			}
		}
	}
	if len(perRegion) < 2 {
		return -1
	}
	regions := make([]string, 0, len(perRegion))
	for r := range perRegion {
		avg := perRegion[r]
		for h := range avg {
			if perRegionN[r][h] > 0 {
				avg[h] /= perRegionN[r][h]
			}
		}
		regions = append(regions, r)
	}
	sort.Strings(regions)
	var sum float64
	var n int
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			sum += stats.Pearson(perRegion[regions[i]], perRegion[regions[j]])
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}
