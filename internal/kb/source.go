package kb

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SnapshotSource hands read handlers the immutable snapshot a request is
// served from. Snapshot must never return nil and must be safe for
// concurrent use; successive calls between publications return the same
// snapshot, so everything memoized on it is shared across requests.
type SnapshotSource interface {
	Snapshot() *Snapshot
}

// StoreSource serves a mutable store through cached immutable snapshots,
// gated on the store's write version: a snapshot is rebuilt only after a
// Put, so a static batch store costs one snapshot total and repeated GETs
// against it are byte-identical. This is the batch server's source — and
// the fallback behind NewHandler, where it preserves the old semantics of
// reads observing later writes, just in consistent units.
type StoreSource struct {
	store *Store
	step  int
	clock func() time.Time // nil ⇒ snapshots carry no publish time

	mu       sync.Mutex
	cached   *Snapshot
	cversion uint64
	seq      uint64
}

// NewStoreSource wraps a store; step labels its snapshots (for a batch
// extraction this is the trace's final grid step). clock supplies the
// Last-Modified timestamp of each rebuilt snapshot and may be nil.
func NewStoreSource(store *Store, step int, clock func() time.Time) *StoreSource {
	return &StoreSource{store: store, step: step, clock: clock}
}

// Snapshot implements SnapshotSource: return the cached snapshot while the
// store version is unchanged, rebuilding (and re-stamping) after writes.
func (s *StoreSource) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		v := s.store.Version()
		if s.cached != nil && s.cversion == v {
			return s.cached
		}
		s.seq++
		var at time.Time
		if s.clock != nil {
			at = s.clock()
		}
		sn := NewSnapshotAt(s.store, s.step, s.seq, at)
		if s.store.Version() != v {
			continue // raced a writer mid-listing; capture again
		}
		s.cached, s.cversion = sn, v
		return sn
	}
}

// FoldSource publishes immutable snapshots of a live store at fold
// boundaries — the read path's seqlock, same discipline as the policy
// engine's source. It satisfies stream.FoldObserver structurally
// (FoldBegin / FoldPublished) without importing internal/stream, so it
// plugs straight into stream.Options.FoldObserver.
//
// The fold path only bumps an atomic sequence counter (odd while a fold is
// rewriting the store — zero allocations, two atomic adds per fold), and
// readers materialize the snapshot lazily, rechecking the sequence after
// building to discard anything torn by a concurrent fold. Built snapshots
// are cached per even sequence number, so writers never block readers and
// a burst of GETs between folds pays for one store copy total.
type FoldSource struct {
	seq   atomic.Uint64 // odd ⇒ fold in flight
	step  atomic.Int64  // latest published fold boundary
	clock func() time.Time

	mu     sync.Mutex
	store  *Store
	cached *Snapshot
	cseq   uint64 // even sequence the cache was built at
}

// NewFoldSource returns an unbound source: attach it to
// stream.Options.FoldObserver before the pipeline is built, then Bind the
// pipeline's published store before serving. Unbound, it observes folds
// but serves empty snapshots. clock stamps each snapshot's publish time
// (threaded in — this package is wall-clock-free) and may be nil.
func NewFoldSource(clock func() time.Time) *FoldSource {
	return &FoldSource{clock: clock}
}

// Bind attaches the published store snapshots are built from.
func (s *FoldSource) Bind(store *Store) {
	s.mu.Lock()
	s.store = store
	s.cached = nil
	s.cseq = 0
	s.mu.Unlock()
}

// FoldBegin implements the fold-observer contract: mark the store torn.
func (s *FoldSource) FoldBegin() { s.seq.Add(1) }

// FoldPublished marks the store consistent as of the given fold boundary.
func (s *FoldSource) FoldPublished(step int) {
	s.step.Store(int64(step))
	s.seq.Add(1)
}

// Snapshot implements SnapshotSource: return the cached snapshot if it is
// still current, otherwise rebuild from the store and retry until a build
// completes without a fold racing it.
func (s *FoldSource) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		seq := s.seq.Load()
		if seq%2 == 1 {
			// A fold is mid-rewrite; it is O(profiles) and does not wait
			// on readers, so just let it finish.
			runtime.Gosched()
			continue
		}
		if s.cached != nil && s.cseq == seq {
			return s.cached
		}
		var at time.Time
		if s.clock != nil {
			at = s.clock()
		}
		sn := NewSnapshotAt(s.store, int(s.step.Load()), seq/2, at)
		if s.seq.Load() != seq {
			continue // torn by a concurrent fold; rebuild
		}
		s.cached, s.cseq = sn, seq
		return sn
	}
}
