package kb

import (
	"sort"

	"cloudlens/internal/core"
)

// RegionRollup is one region's slice of the knowledge base, served by
// GET /api/v1/live/regions. A subscription contributes to every region it
// spans (the paper's multi-region deployments are exactly the interesting
// case), so the per-region subscription counts sum to more than the
// snapshot's profile count whenever multi-region workloads exist.
type RegionRollup struct {
	Region string `json:"region"`
	// Subscriptions spanning the region, and how many of those span more
	// than one region (the candidates region balancing can move).
	Subscriptions   int `json:"subscriptions"`
	MultiRegionSubs int `json:"multiRegionSubs"`
	// RegionAgnosticSubs counts multi-region subscriptions here whose
	// cross-region correlation clears RegionAgnosticThreshold.
	RegionAgnosticSubs int `json:"regionAgnosticSubs"`
	VMsObserved        int `json:"vmsObserved"`
	SnapshotCores      int `json:"snapshotCores"`
	// MeanUtilization averages the classified subscriptions' mean
	// utilizations; 0 when none are classified yet.
	MeanUtilization float64 `json:"meanUtilization"`
	// DominantPattern is the most common dominant pattern among the
	// region's classified subscriptions (ties break in taxonomy order).
	DominantPattern core.Pattern `json:"dominantPattern"`
}

// regionAcc accumulates one region's rollup while profiles are walked.
type regionAcc struct {
	roll     RegionRollup
	utilSum  float64
	utilN    int
	patterns map[core.Pattern]int
}

// Regions aggregates the snapshot per region, sorted by region name, and
// memoizes the result on the snapshot — computed once per fold, never per
// request. Profiles are walked in subscription order and regions rendered
// in name order, so the rollup is a pure function of the profile set.
func (s *Snapshot) Regions() []RegionRollup {
	return s.Memo("kb.regions", func() interface{} {
		return regionRollups(s.profiles)
	}).([]RegionRollup)
}

func regionRollups(profiles []*Profile) []RegionRollup {
	accs := make(map[string]*regionAcc)
	for _, p := range profiles {
		for _, region := range p.Regions {
			acc := accs[region]
			if acc == nil {
				acc = &regionAcc{roll: RegionRollup{Region: region}, patterns: make(map[core.Pattern]int)}
				accs[region] = acc
			}
			acc.roll.Subscriptions++
			acc.roll.VMsObserved += p.VMsObserved
			acc.roll.SnapshotCores += p.SnapshotCores
			if len(p.Regions) > 1 {
				acc.roll.MultiRegionSubs++
				if p.RegionAgnosticScore >= RegionAgnosticThreshold {
					acc.roll.RegionAgnosticSubs++
				}
			}
			if p.MeanUtilization > 0 {
				acc.utilSum += p.MeanUtilization
				acc.utilN++
			}
			if p.DominantPattern != core.PatternUnknown {
				acc.patterns[p.DominantPattern]++
			}
		}
	}
	names := make([]string, 0, len(accs))
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]RegionRollup, 0, len(names))
	for _, name := range names {
		acc := accs[name]
		if acc.utilN > 0 {
			acc.roll.MeanUtilization = acc.utilSum / float64(acc.utilN)
		}
		// Walk the taxonomy in its canonical order so ties are stable.
		best, bestN := core.PatternUnknown, 0
		for _, pat := range core.AllPatterns() {
			if n := acc.patterns[pat]; n > bestN {
				best, bestN = pat, n
			}
		}
		acc.roll.DominantPattern = best
		out = append(out, acc.roll)
	}
	return out
}
