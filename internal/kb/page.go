package kb

import (
	"encoding/base64"
	"errors"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"cloudlens/internal/core"
)

// Cursor pagination for the profile listings, shared by the batch and
// live routes. The scheme is keyset-based: profiles are always listed in
// subscription order, and a cursor names the last subscription already
// delivered, so the next page is "everything after that key". Unlike
// offset pagination, a keyset walk stays duplicate-free while the
// knowledge base fills in underneath it — profiles inserted behind the
// cursor are simply outside the remaining window, and profiles inserted
// ahead of it appear exactly once.
//
// Requests without limit or cursor keep the original unpaginated shape (a
// bare JSON array); any paging parameter switches the response to the
// ListPage envelope.

const (
	// DefaultPageLimit is the page size when a cursor is supplied without
	// an explicit limit.
	DefaultPageLimit = 100
	// MaxPageLimit bounds the page size a client may request.
	MaxPageLimit = 1000
)

// cursorPrefix versions the cursor wire format; bump it if the key scheme
// ever changes so stale cursors fail loudly instead of misbehaving.
const cursorPrefix = "p1:"

// Page is a parsed paging request. The zero value means "unpaginated".
type Page struct {
	// Limit is the maximum number of items per page (0 = unpaginated
	// request).
	Limit int
	// Cursor is the opaque position token from a previous page's
	// next_cursor, empty for the first page.
	Cursor string
}

// Enabled reports whether the client asked for the paginated envelope.
func (p Page) Enabled() bool { return p.Limit > 0 || p.Cursor != "" }

// ListPage is the paginated response envelope. Total counts every item
// matching the filter at the time of this page's request — it may drift
// between pages of a live knowledge base.
type ListPage struct {
	Items      any    `json:"items"`
	NextCursor string `json:"next_cursor,omitempty"`
	Total      int    `json:"total"`
}

// EncodeCursor seals a position key into the opaque wire token.
func EncodeCursor(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + key))
}

// DecodeCursor opens a wire token back into its position key.
func DecodeCursor(cursor string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil || !strings.HasPrefix(string(raw), cursorPrefix) {
		return "", &ParamError{Code: "bad_cursor", Message: "invalid cursor: not issued by this API"}
	}
	return string(raw[len(cursorPrefix):]), nil
}

// Paginate slices one page out of items, which must already be sorted by
// key ascending (both Store.List and the live profile listing guarantee
// that order). It returns the page envelope; the error is a bad_cursor
// ParamError when the cursor does not decode.
func Paginate[T any](items []T, key func(T) string, pg Page) (ListPage, error) {
	after := ""
	if pg.Cursor != "" {
		k, err := DecodeCursor(pg.Cursor)
		if err != nil {
			return ListPage{}, err
		}
		after = k
	}
	limit := pg.Limit
	if limit <= 0 {
		limit = DefaultPageLimit
	}
	start := sort.Search(len(items), func(i int) bool { return key(items[i]) > after })
	end := start + limit
	if end > len(items) {
		end = len(items)
	}
	page := ListPage{Items: items[start:end], Total: len(items)}
	if page.Items == nil || start == end {
		page.Items = []T{} // encode as [], never null
	}
	if end < len(items) {
		page.NextCursor = EncodeCursor(key(items[end-1]))
	}
	return page, nil
}

// ParamError is a 400-class query-string rejection with a stable machine
// code: unknown_param (a parameter the route does not define), bad_param
// (a defined parameter with an unusable value), or bad_cursor (a paging
// token this API did not issue).
type ParamError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *ParamError) Error() string { return e.Message }

// WriteParamError writes err as the uniform 400 envelope, preserving a
// ParamError's machine code.
func WriteParamError(w http.ResponseWriter, err error) {
	var pe *ParamError
	if errors.As(err, &pe) {
		WriteError(w, http.StatusBadRequest, pe.Code, pe.Message)
		return
	}
	WriteError(w, http.StatusBadRequest, "bad_request", err.Error())
}

// listParamNames is the complete filter+paging grammar of the profile
// listing routes; anything else is rejected with unknown_param so typos
// fail loudly instead of silently returning the unfiltered set.
var listParamNames = []string{"cloud", "minAgnostic", "pattern", "minShortLived", "limit", "cursor"}

// ParseListParams parses the unified profile-listing grammar — the filter
// parameters of ParseQuery plus limit and cursor — strictly: unknown
// parameters are rejected. Both /api/v1/profiles and /api/v1/live/profiles
// speak exactly this grammar.
func ParseListParams(r *http.Request) (Query, Page, error) {
	vals := r.URL.Query()
	for name := range vals {
		if !paramAllowed(name) {
			return Query{}, Page{}, &ParamError{
				Code:    "unknown_param",
				Message: "unknown query parameter: " + name + " (known: " + strings.Join(listParamNames, ", ") + ")",
			}
		}
	}
	q, err := parseFilters(vals)
	if err != nil {
		return Query{}, Page{}, err
	}
	var pg Page
	if s := vals.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > MaxPageLimit {
			return Query{}, Page{}, &ParamError{
				Code:    "bad_param",
				Message: "invalid query parameter: limit (want an integer in [1, " + strconv.Itoa(MaxPageLimit) + "])",
			}
		}
		pg.Limit = n
	}
	pg.Cursor = vals.Get("cursor")
	return q, pg, nil
}

func paramAllowed(name string) bool {
	for _, p := range listParamNames {
		if p == name {
			return true
		}
	}
	return false
}

// parseFilters translates the filter subset (cloud, minAgnostic, pattern,
// minShortLived) into a store query.
func parseFilters(vals url.Values) (Query, error) {
	q := Query{MinRegionAgnosticScore: disabledScore}
	switch vals.Get("cloud") {
	case "":
	case "private":
		q.Cloud = core.Private
	case "public":
		q.Cloud = core.Public
	default:
		return q, errBadParam("cloud")
	}
	if s := vals.Get("minAgnostic"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		// ParseFloat accepts "NaN", which fails every threshold comparison
		// in Store.List and silently returns the unfiltered set.
		if err != nil || math.IsNaN(v) {
			return q, errBadParam("minAgnostic")
		}
		q.MinRegionAgnosticScore = v
	}
	if s := vals.Get("minShortLived"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(v) {
			return q, errBadParam("minShortLived")
		}
		q.MinShortLivedShare = v
	}
	if s := vals.Get("pattern"); s != "" {
		found := false
		for _, p := range core.AllPatterns() {
			if p.String() == s {
				q.Pattern = p
				found = true
				break
			}
		}
		if !found {
			return q, errBadParam("pattern")
		}
	}
	return q, nil
}
