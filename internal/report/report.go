// Package report renders analysis results as plain text: aligned tables,
// tabulated CDF curves, ASCII sparklines for time series, and shaded
// heatmap grids. cmd/cloudreport composes these primitives into the
// figure-by-figure reproduction report.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cloudlens/internal/stats"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which gets three decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width+2, c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// sparkLevels are the eighth-block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a unicode sparkline, scaled to the
// series' own min..max. An empty series renders as "".
func Sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	lo, hi := stats.Min(series), stats.Max(series)
	var b strings.Builder
	for _, v := range series {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Downsample reduces a series to at most n points by block averaging,
// keeping sparklines terminal-width friendly.
func Downsample(series []float64, n int) []float64 {
	return DownsampleInto(nil, series, n)
}

// DownsampleInto is Downsample writing into buf, reallocating only when buf
// is too small. Report writers that render many sparklines pass one scratch
// buffer so downsampling allocates once per report, not once per curve.
// When the series is already short enough it is returned as-is and buf is
// untouched.
func DownsampleInto(buf []float64, series []float64, n int) []float64 {
	if n <= 0 || len(series) <= n {
		return series
	}
	var out []float64
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		lo := i * len(series) / n
		hi := (i + 1) * len(series) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range series[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// CDFRows tabulates an ECDF at the given probability levels as
// "p -> value" rows.
func CDFRows(e *stats.ECDF, ps ...float64) []string {
	rows := make([]string, 0, len(ps))
	for _, p := range ps {
		rows = append(rows, fmt.Sprintf("p%02.0f=%.2f", p*100, e.InvAt(p)))
	}
	return rows
}

// heatShades maps density to characters for Heatmap.
var heatShades = []rune(" .:-=+*#%@")

// Heatmap renders a normalized 2-D histogram (values in [0,1]) as a
// character grid, one row per y bin from high to low.
func Heatmap(normalized [][]float64) string {
	if len(normalized) == 0 {
		return ""
	}
	ny := len(normalized[0])
	var b strings.Builder
	for y := ny - 1; y >= 0; y-- {
		for x := 0; x < len(normalized); x++ {
			v := normalized[x][y]
			idx := int(math.Round(v * float64(len(heatShades)-1)))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatShades) {
				idx = len(heatShades) - 1
			}
			b.WriteRune(heatShades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Section writes an underlined section heading.
func Section(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title))); err != nil {
		return err
	}
	return nil
}
