package report

import (
	"bytes"
	"strings"
	"testing"

	"cloudlens/internal/stats"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	tab.AddRow("gamma", "3", "overflow-dropped")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "2.500") {
		t.Fatal("float formatting missing")
	}
	if strings.Contains(out, "overflow-dropped") {
		t.Fatal("overflow cell not dropped")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if runes := []rune(s); len(runes) != 4 {
		t.Fatalf("sparkline length %d", len(runes))
	}
	// Monotone input yields a monotone sparkline.
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("sparkline not monotone: %q", s)
		}
	}
	// A constant series renders without panic.
	if got := Sparkline([]float64{5, 5, 5}); len([]rune(got)) != 3 {
		t.Fatalf("constant sparkline = %q", got)
	}
}

func TestDownsample(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	got := Downsample(series, 10)
	if len(got) != 10 {
		t.Fatalf("downsampled length %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("block means not increasing for a ramp")
		}
	}
	// No-ops.
	if out := Downsample(series, 200); len(out) != 100 {
		t.Fatal("upsampling should be a no-op")
	}
	if out := Downsample(series, 0); len(out) != 100 {
		t.Fatal("n=0 should be a no-op")
	}
}

func TestCDFRows(t *testing.T) {
	e := stats.NewECDF([]float64{1, 2, 3, 4})
	rows := CDFRows(e, 0.5, 0.9)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if !strings.HasPrefix(rows[0], "p50=") {
		t.Fatalf("row format: %q", rows[0])
	}
}

func TestHeatmap(t *testing.T) {
	if got := Heatmap(nil); got != "" {
		t.Fatalf("empty heatmap = %q", got)
	}
	grid := [][]float64{{0, 1}, {0.5, 0}}
	out := Heatmap(grid)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap rows = %d", len(lines))
	}
	// Top row is the high-y bin: cells (x=0,y=1)='@', (x=1,y=1)=' '.
	if []rune(lines[0])[0] != '@' {
		t.Fatalf("densest cell not darkest: %q", lines[0])
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.4567); got != "45.7%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestSection(t *testing.T) {
	var buf bytes.Buffer
	if err := Section(&buf, "Title"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Title\n=====") {
		t.Fatalf("section format:\n%s", buf.String())
	}
}

// failWriter errors after n writes, exercising Render's error paths.
type failWriter struct{ remaining int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errWriteFailed
	}
	w.remaining--
	return len(p), nil
}

var errWriteFailed = errSentinel("write failed")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

func TestTableRenderPropagatesWriteErrors(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	for n := 0; n < 4; n++ {
		if err := tab.Render(&failWriter{remaining: n}); err == nil {
			t.Fatalf("Render with %d allowed writes did not fail", n)
		}
	}
	if err := tab.Render(&failWriter{remaining: 100}); err != nil {
		t.Fatalf("Render with ample writes failed: %v", err)
	}
}

func TestSectionPropagatesWriteErrors(t *testing.T) {
	if err := Section(&failWriter{}, "x"); err == nil {
		t.Fatal("Section did not propagate the write error")
	}
}
