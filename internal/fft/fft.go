// Package fft implements an iterative radix-2 fast Fourier transform on
// complex128 slices. It exists to power the periodogram in package periodic
// (the period-detection approach of Vlachos et al. that the paper cites for
// identifying diurnal and hourly-peak utilization patterns) without any
// dependency outside the standard library.
package fft

import (
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Transform computes the in-place forward DFT of x. The length of x must be
// a power of two; Transform panics otherwise. The convention is
// X[k] = sum_n x[n] * exp(-2*pi*i*k*n/N), with no scaling.
func Transform(x []complex128) {
	transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/N
// scaling, so Inverse(Transform(x)) == x up to rounding. The length must be
// a power of two.
func Inverse(x []complex128) {
	transform(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("fft: length is not a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Danielson-Lanczos butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := -2 * math.Pi / float64(size)
		if inverse {
			angle = -angle
		}
		wStep := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// RealTransform computes the DFT of a real-valued signal, zero-padded to the
// next power of two, and returns the complex spectrum. The input is not
// modified.
func RealTransform(signal []float64) []complex128 {
	n := NextPow2(len(signal))
	x := make([]complex128, n)
	for i, v := range signal {
		x[i] = complex(v, 0)
	}
	Transform(x)
	return x
}

// PowerSpectrum returns the one-sided periodogram of a real signal: the
// squared magnitude of each of the first N/2+1 spectral bins of the
// zero-padded DFT, normalized by the (padded) length.
func PowerSpectrum(signal []float64) []float64 {
	spec := RealTransform(signal)
	n := len(spec)
	half := n/2 + 1
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}
