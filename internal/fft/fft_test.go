package fft

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestTransformImpulse(t *testing.T) {
	// DFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	Transform(x)
	for k, v := range x {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestTransformConstant(t *testing.T) {
	// DFT of a constant is all mass in the DC bin.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = 2
	}
	Transform(x)
	if math.Abs(real(x[0])-float64(2*n)) > 1e-9 {
		t.Fatalf("DC bin = %v, want %d", x[0], 2*n)
	}
	for k := 1; k < n; k++ {
		if math.Abs(real(x[k])) > 1e-9 || math.Abs(imag(x[k])) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", k, x[k])
		}
	}
}

func TestTransformSine(t *testing.T) {
	// A pure sine at bin 3 concentrates power in bins 3 and n-3.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*3*float64(i)/float64(n)), 0)
	}
	Transform(x)
	for k := 0; k < n; k++ {
		mag := real(x[k])*real(x[k]) + imag(x[k])*imag(x[k])
		if k == 3 || k == n-3 {
			if mag < 100 {
				t.Fatalf("expected strong peak at bin %d, got %v", k, mag)
			}
			continue
		}
		if mag > 1e-12 {
			t.Fatalf("leakage at bin %d: %v", k, mag)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	check := func(raw []float64) bool {
		n := NextPow2(len(raw))
		if n < 2 {
			n = 2
		}
		x := make([]complex128, n)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = complex(math.Mod(v, 1e6), 0)
		}
		orig := append([]complex128(nil), x...)
		Transform(x)
		Inverse(x)
		// Round-trip error is relative to the signal's magnitude, not to
		// each element's (near-zero elements see absolute error from the
		// large ones through the butterflies).
		scale := 1.0
		for i := range orig {
			if a := math.Abs(real(orig[i])); a > scale {
				scale = a
			}
		}
		for i := range x {
			if math.Abs(real(x[i])-real(orig[i]))/scale > 1e-9 {
				return false
			}
			if math.Abs(imag(x[i]))/scale > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transform(make([]complex128, 3))
}

func TestTransformEmptyAndSingle(t *testing.T) {
	Transform(nil) // must not panic
	x := []complex128{5}
	Transform(x)
	if x[0] != 5 {
		t.Fatalf("1-point DFT changed the value: %v", x[0])
	}
}

func TestPowerSpectrumPeak(t *testing.T) {
	// 2016 samples (a week at 5-minute resolution) with a daily cosine:
	// 7 cycles. After padding to 2048 the peak lands near bin
	// 7*2048/2016 ≈ 7.1.
	n := 2016
	signal := make([]float64, n)
	for i := range signal {
		signal[i] = math.Cos(2 * math.Pi * 7 * float64(i) / float64(n))
	}
	ps := PowerSpectrum(signal)
	if len(ps) != 1025 {
		t.Fatalf("spectrum length = %d, want 1025", len(ps))
	}
	peak := 1
	for k := 2; k < len(ps); k++ {
		if ps[k] > ps[peak] {
			peak = k
		}
	}
	if peak < 6 || peak > 8 {
		t.Fatalf("peak at bin %d, want ~7", peak)
	}
}

func TestRealTransformDoesNotMutate(t *testing.T) {
	signal := []float64{1, 2, 3}
	RealTransform(signal)
	if signal[0] != 1 || signal[1] != 2 || signal[2] != 3 {
		t.Fatalf("input mutated: %v", signal)
	}
}
